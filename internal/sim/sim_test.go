package sim

import (
	"testing"
	"testing/quick"

	"hybridsched/internal/rng"
	"hybridsched/internal/units"
)

func TestOrderingByTime(t *testing.T) {
	s := New()
	var order []int
	s.Schedule(3*units.Nanosecond, func() { order = append(order, 3) })
	s.Schedule(1*units.Nanosecond, func() { order = append(order, 1) })
	s.Schedule(2*units.Nanosecond, func() { order = append(order, 2) })
	s.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v", order)
	}
	if s.Now() != units.Time(3*units.Nanosecond) {
		t.Fatalf("now = %v", s.Now())
	}
}

func TestFIFOWithinTimestamp(t *testing.T) {
	s := New()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		s.Schedule(units.Nanosecond, func() { order = append(order, i) })
	}
	s.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time events reordered: %v", order)
		}
	}
}

func TestNestedScheduling(t *testing.T) {
	s := New()
	var fired []units.Time
	s.Schedule(units.Nanosecond, func() {
		fired = append(fired, s.Now())
		s.Schedule(units.Nanosecond, func() {
			fired = append(fired, s.Now())
		})
	})
	s.Run()
	if len(fired) != 2 || fired[1] != units.Time(2*units.Nanosecond) {
		t.Fatalf("fired = %v", fired)
	}
}

func TestScheduleAtCurrentInstantRunsAfterQueued(t *testing.T) {
	s := New()
	var order []string
	s.Schedule(0, func() {
		order = append(order, "a")
		s.Schedule(0, func() { order = append(order, "c") })
	})
	s.Schedule(0, func() { order = append(order, "b") })
	s.Run()
	want := []string{"a", "b", "c"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v", order)
		}
	}
}

func TestNegativeDelayClamped(t *testing.T) {
	s := New()
	ran := false
	s.Schedule(-5, func() { ran = true })
	s.Run()
	if !ran {
		t.Fatal("negative-delay event never ran")
	}
}

func TestPastSchedulingPanics(t *testing.T) {
	s := New()
	s.Schedule(10*units.Nanosecond, func() {})
	s.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic scheduling in the past")
		}
	}()
	s.At(units.Time(units.Nanosecond), func() {})
}

func TestNilCallbackPanics(t *testing.T) {
	s := New()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for nil callback")
		}
	}()
	s.Schedule(0, nil)
}

func TestCancel(t *testing.T) {
	s := New()
	ran := false
	e := s.Schedule(units.Nanosecond, func() { ran = true })
	s.Cancel(e)
	s.Cancel(e)       // double-cancel is fine
	s.Cancel(Event{}) // so is canceling the zero handle
	s.Run()
	if ran {
		t.Fatal("canceled event ran")
	}
	if s.Processed() != 0 {
		t.Fatalf("processed = %d", s.Processed())
	}
}

func TestCancelOneOfMany(t *testing.T) {
	s := New()
	var got []int
	var evs []Event
	for i := 0; i < 5; i++ {
		i := i
		evs = append(evs, s.Schedule(units.Duration(i+1)*units.Nanosecond, func() {
			got = append(got, i)
		}))
	}
	s.Cancel(evs[2])
	s.Run()
	if len(got) != 4 {
		t.Fatalf("got %v", got)
	}
	for _, v := range got {
		if v == 2 {
			t.Fatal("canceled event fired")
		}
	}
}

func TestRunUntil(t *testing.T) {
	s := New()
	var fired int
	for i := 1; i <= 10; i++ {
		s.Schedule(units.Duration(i)*units.Microsecond, func() { fired++ })
	}
	s.RunUntil(units.Time(5 * units.Microsecond))
	if fired != 5 {
		t.Fatalf("fired = %d, want 5", fired)
	}
	if s.Now() != units.Time(5*units.Microsecond) {
		t.Fatalf("now = %v", s.Now())
	}
	if s.Pending() != 5 {
		t.Fatalf("pending = %d", s.Pending())
	}
	s.Run()
	if fired != 10 {
		t.Fatalf("after Run fired = %d", fired)
	}
}

func TestRunUntilAdvancesClockWithEmptyQueue(t *testing.T) {
	s := New()
	s.RunUntil(units.Time(units.Millisecond))
	if s.Now() != units.Time(units.Millisecond) {
		t.Fatalf("now = %v", s.Now())
	}
}

func TestStop(t *testing.T) {
	s := New()
	count := 0
	for i := 1; i <= 10; i++ {
		s.Schedule(units.Duration(i)*units.Nanosecond, func() {
			count++
			if count == 3 {
				s.Stop()
			}
		})
	}
	s.Run()
	if count != 3 {
		t.Fatalf("count = %d, want 3", count)
	}
	s.Run() // resume
	if count != 10 {
		t.Fatalf("count after resume = %d, want 10", count)
	}
}

func TestTicker(t *testing.T) {
	s := New()
	var ticks []units.Time
	var tk *Ticker
	tk = s.NewTicker(10*units.Nanosecond, func() {
		ticks = append(ticks, s.Now())
		if len(ticks) == 5 {
			tk.Stop()
		}
	})
	s.Run()
	if len(ticks) != 5 {
		t.Fatalf("ticks = %v", ticks)
	}
	for i, tt := range ticks {
		want := units.Time(units.Duration(i+1) * 10 * units.Nanosecond)
		if tt != want {
			t.Fatalf("tick %d at %v, want %v", i, tt, want)
		}
	}
}

func TestTickerBadPeriodPanics(t *testing.T) {
	s := New()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	s.NewTicker(0, func() {})
}

// TestHeapOrderProperty drives the kernel with random schedules and
// verifies global time-ordering of execution.
func TestHeapOrderProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		s := New()
		var times []units.Time
		n := 50 + r.Intn(200)
		for i := 0; i < n; i++ {
			d := units.Duration(r.Int63n(int64(units.Millisecond)))
			s.Schedule(d, func() { times = append(times, s.Now()) })
		}
		s.Run()
		if len(times) != n {
			return false
		}
		for i := 1; i < len(times); i++ {
			if times[i] < times[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestPendingExcludesCanceled is the regression test for queue-depth
// overcounting: canceled events must leave the queue (and the Pending
// count) immediately, not linger until drained.
func TestPendingExcludesCanceled(t *testing.T) {
	s := New()
	var evs []Event
	for i := 0; i < 5; i++ {
		evs = append(evs, s.Schedule(units.Duration(i+1)*units.Nanosecond, func() {}))
	}
	if s.Pending() != 5 {
		t.Fatalf("pending = %d, want 5", s.Pending())
	}
	s.Cancel(evs[2])
	if s.Pending() != 4 {
		t.Fatalf("pending after one cancel = %d, want 4", s.Pending())
	}
	s.Cancel(evs[2]) // double-cancel must not double-decrement
	if s.Pending() != 4 {
		t.Fatalf("pending after double cancel = %d, want 4", s.Pending())
	}
	for _, e := range evs {
		s.Cancel(e)
	}
	if s.Pending() != 0 {
		t.Fatalf("pending after canceling all = %d, want 0", s.Pending())
	}
}

// TestCancelThenRun: a queue whose events are all canceled before Run must
// execute nothing and leave the clock untouched.
func TestCancelThenRun(t *testing.T) {
	s := New()
	fired := 0
	var evs []Event
	for i := 0; i < 10; i++ {
		evs = append(evs, s.Schedule(units.Duration(i+1)*units.Nanosecond, func() { fired++ }))
	}
	for _, e := range evs {
		s.Cancel(e)
	}
	s.Run()
	if fired != 0 || s.Processed() != 0 {
		t.Fatalf("fired = %d, processed = %d, want 0, 0", fired, s.Processed())
	}
	if s.Now() != 0 {
		t.Fatalf("now = %v, want 0", s.Now())
	}
}

// TestRunUntilAllCanceled: RunUntil over a fully-canceled queue must still
// advance the clock to the target time.
func TestRunUntilAllCanceled(t *testing.T) {
	s := New()
	var evs []Event
	for i := 0; i < 5; i++ {
		evs = append(evs, s.Schedule(units.Duration(i+1)*units.Microsecond, func() {
			t.Fatal("canceled event fired")
		}))
	}
	for _, e := range evs {
		s.Cancel(e)
	}
	s.RunUntil(units.Time(3 * units.Microsecond))
	if s.Now() != units.Time(3*units.Microsecond) {
		t.Fatalf("now = %v, want 3us", s.Now())
	}
}

// TestTickerStopInsideOwnTick: stopping a ticker from its own callback
// (including stopping it twice) must not fire further ticks and must not
// cancel unrelated events that recycled the tick's storage.
func TestTickerStopInsideOwnTick(t *testing.T) {
	s := New()
	ticks := 0
	bystander := false
	var tk *Ticker
	tk = s.NewTicker(10*units.Nanosecond, func() {
		ticks++
		if ticks == 3 {
			tk.Stop()
			tk.Stop() // double-stop is safe
			// Scheduled after Stop: likely reuses the freed tick node;
			// the ticker's stale handle must not be able to kill it.
			s.Schedule(units.Nanosecond, func() { bystander = true })
			tk.Stop()
		}
	})
	s.Run()
	if ticks != 3 {
		t.Fatalf("ticks = %d, want 3", ticks)
	}
	if !bystander {
		t.Fatal("event scheduled after Ticker.Stop was lost")
	}
}

// TestStaleHandleCancelIsNoOp: once an event fires, its handle is stale; a
// late Cancel through it must not touch whichever event reused the node.
func TestStaleHandleCancelIsNoOp(t *testing.T) {
	s := New()
	first := s.Schedule(units.Nanosecond, func() {})
	s.Run()
	second := s.Schedule(units.Nanosecond, func() {})
	s.Cancel(first) // stale: must not cancel second
	if s.Pending() != 1 {
		t.Fatalf("pending = %d, want 1 (stale cancel removed a live event)", s.Pending())
	}
	ran := false
	_ = second
	s.queue[0].fn = func() { ran = true }
	s.Run()
	if !ran {
		t.Fatal("live event did not run after stale cancel")
	}
}

// TestFIFODeterminismWithFreelistReuse drives several waves of
// schedule/fire/cancel so that nodes are heavily recycled, and verifies
// same-timestamp FIFO ordering holds in every wave.
func TestFIFODeterminismWithFreelistReuse(t *testing.T) {
	s := New()
	for wave := 0; wave < 20; wave++ {
		var order []int
		var evs []Event
		base := units.Duration(wave+1) * units.Microsecond
		for i := 0; i < 16; i++ {
			i := i
			evs = append(evs, s.Schedule(base, func() { order = append(order, i) }))
		}
		// Cancel every third event; survivors must still fire in
		// submission order despite the heap churn and node reuse.
		for i := 0; i < len(evs); i += 3 {
			s.Cancel(evs[i])
		}
		s.Run()
		want := -1
		for _, v := range order {
			if v%3 == 0 {
				t.Fatalf("wave %d: canceled event %d fired", wave, v)
			}
			if v <= want {
				t.Fatalf("wave %d: same-time events reordered: %v", wave, order)
			}
			want = v
		}
		if len(order) != 16-6 {
			t.Fatalf("wave %d: fired %d events, want 10", wave, len(order))
		}
	}
}

// TestEventWhen: the handle remembers its scheduled time, even after the
// event fires and its storage is recycled.
func TestEventWhen(t *testing.T) {
	s := New()
	e := s.Schedule(7*units.Nanosecond, func() {})
	if e.When() != units.Time(7*units.Nanosecond) {
		t.Fatalf("When = %v", e.When())
	}
	s.Run()
	if e.When() != units.Time(7*units.Nanosecond) {
		t.Fatalf("When after fire = %v", e.When())
	}
}

func TestProcessedCount(t *testing.T) {
	s := New()
	for i := 0; i < 7; i++ {
		s.Schedule(units.Nanosecond, func() {})
	}
	s.Run()
	if s.Processed() != 7 {
		t.Fatalf("processed = %d", s.Processed())
	}
}
