package cluster

import (
	"testing"

	"hybridsched/internal/packet"
	"hybridsched/internal/rng"
	"hybridsched/internal/sched"
	"hybridsched/internal/sim"
	"hybridsched/internal/units"
)

func testConfig() Config {
	return Config{
		Racks:        4,
		HostsPerRack: 4,
		HostRate:     10 * units.Gbps,
		UplinkRate:   40 * units.Gbps,
		CoreReconfig: units.Microsecond,
		Slot:         10 * units.Microsecond,
		TransitDelay: units.Microsecond,
		Algorithm:    "greedy",
		Timing:       sched.DefaultHardware(),
		Pipelined:    true,
	}
}

func TestValidation(t *testing.T) {
	s := sim.New()
	bad := []func(c *Config){
		func(c *Config) { c.Racks = 1 },
		func(c *Config) { c.HostsPerRack = 0 },
		func(c *Config) { c.HostRate = 0 },
		func(c *Config) { c.UplinkRate = 0 },
		func(c *Config) { c.Slot = 0 },
		func(c *Config) { c.Timing = nil },
		func(c *Config) { c.Algorithm = "bogus" },
	}
	for i, mutate := range bad {
		cfg := testConfig()
		mutate(&cfg)
		if _, err := New(s, cfg); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestRackOf(t *testing.T) {
	s := sim.New()
	c, err := New(s, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if c.Hosts() != 16 {
		t.Fatalf("hosts = %d", c.Hosts())
	}
	if c.RackOf(0) != 0 || c.RackOf(3) != 0 || c.RackOf(4) != 1 || c.RackOf(15) != 3 {
		t.Fatal("rack mapping wrong")
	}
}

func TestIntraRackBypassesCore(t *testing.T) {
	s := sim.New()
	c, err := New(s, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	c.Inject(&packet.Packet{Src: 0, Dst: 1, Size: 1500 * units.Byte})
	s.RunUntil(units.Time(100 * units.Microsecond))
	c.Stop()
	m := c.Metrics()
	if m.DeliveredIntra != 1 || m.DeliveredInter != 0 {
		t.Fatalf("intra=%d inter=%d", m.DeliveredIntra, m.DeliveredInter)
	}
	// The intra packet never touched inter VOQs or the core.
	if m.PeakInterVOQ != 0 || m.InterBits != 0 {
		t.Fatal("intra traffic leaked into the core path")
	}
}

func TestInterRackRidesTheCore(t *testing.T) {
	s := sim.New()
	c, err := New(s, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	c.Inject(&packet.Packet{Src: 0, Dst: 7, Size: 1500 * units.Byte}) // rack 0 -> 1
	s.RunUntil(units.Time(units.Millisecond))
	c.Stop()
	m := c.Metrics()
	if m.DeliveredInter != 1 {
		t.Fatalf("inter = %d, want 1 (metrics %+v)", m.DeliveredInter, m)
	}
	if m.InterBits != 1500*units.Byte {
		t.Fatalf("inter bits = %v", m.InterBits)
	}
	if m.CoreConfigures == 0 {
		t.Fatal("core was never configured")
	}
}

func TestIntraLatencyFarBelowInter(t *testing.T) {
	s := sim.New()
	c, err := New(s, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	r := rng.New(3)
	var id uint64
	// Mixed workload, one packet every 2us for 2ms.
	for k := 0; k < 1000; k++ {
		at := units.Time(units.Duration(k) * 2 * units.Microsecond)
		s.At(at, func() {
			id++
			src := packet.Port(r.Intn(16))
			var dst packet.Port
			for {
				dst = packet.Port(r.Intn(16))
				if dst != src {
					break
				}
			}
			c.Inject(&packet.Packet{ID: id, Src: src, Dst: dst, Size: 1500 * units.Byte})
		})
	}
	s.RunUntil(units.Time(4 * units.Millisecond))
	c.Stop()
	m := c.Metrics()
	if m.LatencyIntra.Count == 0 || m.LatencyInter.Count == 0 {
		t.Fatalf("missing samples: %+v", m)
	}
	if m.LatencyIntra.P50 >= m.LatencyInter.P50 {
		t.Fatalf("intra p50 %v should be far below inter p50 %v",
			units.Duration(m.LatencyIntra.P50), units.Duration(m.LatencyInter.P50))
	}
	// Conservation: everything injected is eventually delivered.
	if m.DeliveredIntra+m.DeliveredInter != m.Injected {
		t.Fatalf("delivered %d+%d of %d", m.DeliveredIntra, m.DeliveredInter, m.Injected)
	}
}

// TestCentralizedBeatsDistributedUnderSkew is the paper's
// centralized-vs-distributed tradeoff made measurable: with only request
// bits the scheduler cannot tell an elephant from a mouse, so under
// skewed inter-rack demand the centralized (magnitude-aware) scheduler
// clears the backlog faster.
func TestCentralizedBeatsDistributedUnderSkew(t *testing.T) {
	run := func(mode Mode) (elephantBits units.Size) {
		s := sim.New()
		cfg := testConfig()
		cfg.Mode = mode
		c, err := New(s, cfg)
		if err != nil {
			t.Fatal(err)
		}
		c.Start()
		var id uint64
		// The elephant: a standing rack-0 -> rack-2 backlog.
		s.At(units.Time(units.Microsecond), func() {
			for k := 0; k < 400; k++ {
				id++
				c.Inject(&packet.Packet{ID: id, Src: 0, Dst: 8, Size: 9000 * units.Byte})
			}
		})
		// Persistent light contention on the same row: trickles from
		// rack 0 to racks 1 and 3, one packet every 10 us each. With
		// request bits only, all three of row 0's candidates look equal
		// and the arbiter's tie-break starves the elephant.
		for k := 0; k < 60; k++ {
			at := units.Time(units.Duration(k)*10*units.Microsecond + 2*units.Microsecond)
			s.At(at, func() {
				id++
				c.Inject(&packet.Packet{ID: id, Src: 1, Dst: 5, Size: 1500 * units.Byte})
				id++
				c.Inject(&packet.Packet{ID: id, Src: 1, Dst: 13, Size: 1500 * units.Byte})
			})
		}
		s.RunUntil(units.Time(600 * units.Microsecond))
		c.Stop()
		return c.Metrics().InterBits
	}
	cent := run(Centralized)
	dist := run(Distributed)
	// The centralized (magnitude-aware) scheduler must move strictly more
	// inter-rack volume: it keeps the circuit on the elephant while the
	// request-bit scheduler ping-pongs to the trickles.
	if cent <= dist {
		t.Fatalf("centralized moved %v <= distributed %v under skew", cent, dist)
	}
}

func TestModeString(t *testing.T) {
	if Centralized.String() != "centralized" || Distributed.String() != "distributed" {
		t.Fatal("mode strings wrong")
	}
}

func TestDutyCycleAccounting(t *testing.T) {
	s := sim.New()
	cfg := testConfig()
	c, err := New(s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	c.Inject(&packet.Packet{Src: 0, Dst: 8, Size: 1500 * units.Byte})
	s.RunUntil(units.Time(units.Millisecond))
	c.Stop()
	m := c.Metrics()
	if m.CoreDutyCycle <= 0 || m.CoreDutyCycle > 1 {
		t.Fatalf("duty = %v", m.CoreDutyCycle)
	}
}
