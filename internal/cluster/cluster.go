// Package cluster assembles the paper's §3 testbed vision: "a large
// testbed can be assembled, using tens of processing elements, a
// centralized scheduling entity and a commercial OCS". Racks of hosts
// hang off ToR processing elements; intra-rack traffic is switched
// electrically at the ToR; inter-rack traffic is aggregated into
// rack-level VOQs and carried over a core optical circuit switch driven
// by the scheduling loop.
//
// The package also realizes the paper's claim that "the proposed
// architecture has the advantage of supporting both centralized and
// distributed implementations": in Centralized mode the scheduler sees
// the full rack-level demand matrix (magnitudes); in Distributed mode
// each ToR sends only request bits — one bit per destination rack, the
// control information a distributed request/grant implementation can
// afford — and the matching algorithm works on that. Comparing the two
// under skew quantifies what the extra control bandwidth buys.
package cluster

import (
	"fmt"

	"hybridsched/internal/demand"
	"hybridsched/internal/eps"
	"hybridsched/internal/match"
	"hybridsched/internal/packet"
	"hybridsched/internal/sched"
	"hybridsched/internal/sim"
	"hybridsched/internal/stats"
	"hybridsched/internal/units"
	"hybridsched/internal/voq"
)

// Mode selects the scheduling implementation.
type Mode uint8

// Mode values.
const (
	// Centralized: the scheduling entity sees exact rack-pair demand.
	Centralized Mode = iota
	// Distributed: ToRs report only request bits (demand presence).
	Distributed
)

func (m Mode) String() string {
	if m == Distributed {
		return "distributed"
	}
	return "centralized"
}

// Config parameterizes the cluster.
type Config struct {
	Racks        int
	HostsPerRack int
	// HostRate is the host<->ToR link rate (also the ToR EPS drain rate
	// per host port).
	HostRate units.BitRate
	// UplinkRate is the per-rack circuit rate through the core OCS.
	UplinkRate units.BitRate
	// CoreReconfig is the core OCS dead-time.
	CoreReconfig units.Duration
	// Slot is the core transmission window per configuration.
	Slot units.Duration
	// TransitDelay is the ToR->core->ToR propagation.
	TransitDelay units.Duration
	// Algorithm schedules the rack-level matrix.
	Algorithm string
	Seed      uint64
	Timing    sched.TimingModel
	Pipelined bool
	Mode      Mode
}

func (c *Config) validate() error {
	if c.Racks < 2 {
		return fmt.Errorf("cluster: need at least 2 racks")
	}
	if c.HostsPerRack < 1 {
		return fmt.Errorf("cluster: need at least 1 host per rack")
	}
	if c.HostRate <= 0 || c.UplinkRate <= 0 {
		return fmt.Errorf("cluster: rates must be positive")
	}
	if c.Slot <= 0 {
		return fmt.Errorf("cluster: Slot must be positive")
	}
	if c.Algorithm == "" {
		c.Algorithm = "greedy"
	}
	if c.Timing == nil {
		return fmt.Errorf("cluster: Timing model is required")
	}
	return nil
}

// Cluster is the assembled testbed. Create with New.
type Cluster struct {
	sim *sim.Simulator
	cfg Config

	tors []*eps.Switch // per-rack electrical switch (intra + delivery)
	// interVOQ[src][dst] aggregates inter-rack traffic at the source ToR.
	interVOQ [][]*voq.Queue
	loop     *sched.Loop

	circuits   match.Matching // current core circuits (rack -> rack)
	reconfig   bool
	epoch      uint64
	uplinkBusy []units.Time
	configures stats.Counter
	deadTime   units.Duration

	injected       stats.Counter
	deliveredIntra stats.Counter
	deliveredInter stats.Counter
	bitsInter      stats.Counter
	truncated      stats.Counter
	latIntra       stats.Histogram
	latInter       stats.Histogram
	peakInterBits  units.Size
	curInterBits   units.Size
}

// New assembles a cluster.
func New(s *sim.Simulator, cfg Config) (*Cluster, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	alg, err := match.New(cfg.Algorithm, cfg.Racks, cfg.Seed)
	if err != nil {
		return nil, err
	}
	c := &Cluster{
		sim:        s,
		cfg:        cfg,
		circuits:   match.NewMatching(cfg.Racks),
		uplinkBusy: make([]units.Time, cfg.Racks),
	}
	total := cfg.Racks * cfg.HostsPerRack
	c.tors = make([]*eps.Switch, cfg.Racks)
	for r := range c.tors {
		// Output queues are indexed by global host id for simplicity;
		// each ToR only ever uses its own rack's slice of them.
		c.tors[r] = eps.New(s, eps.Config{
			Ports:         total,
			PortRate:      cfg.HostRate,
			FabricLatency: 500 * units.Nanosecond,
		}, c.deliver)
	}
	c.interVOQ = make([][]*voq.Queue, cfg.Racks)
	for i := range c.interVOQ {
		c.interVOQ[i] = make([]*voq.Queue, cfg.Racks)
		for j := range c.interVOQ[i] {
			c.interVOQ[i][j] = voq.NewQueue(0, 0)
		}
	}
	c.loop = sched.NewLoop(s, sched.LoopConfig{
		Ports:     cfg.Racks,
		Slot:      cfg.Slot,
		Pipelined: cfg.Pipelined,
	}, alg, cfg.Timing, sched.Hooks{
		Snapshot:  c.snapshot,
		Configure: c.configure,
		Grant:     c.grant,
	})
	return c, nil
}

// Start begins core scheduling.
func (c *Cluster) Start() { c.loop.Start() }

// Stop halts core scheduling.
func (c *Cluster) Stop() { c.loop.Stop() }

// RackOf returns the rack a host belongs to.
func (c *Cluster) RackOf(h packet.Port) int { return int(h) / c.cfg.HostsPerRack }

// Hosts returns the total host count.
func (c *Cluster) Hosts() int { return c.cfg.Racks * c.cfg.HostsPerRack }

// Inject introduces a packet at its source host. Src/Dst are global host
// ids.
func (c *Cluster) Inject(p *packet.Packet) {
	now := c.sim.Now()
	if p.CreatedAt == 0 {
		p.CreatedAt = now
	}
	c.injected.Inc()
	src, dst := c.RackOf(p.Src), c.RackOf(p.Dst)
	if src == dst {
		// Intra-rack: switched electrically at the ToR.
		c.tors[src].Send(p)
		return
	}
	q := c.interVOQ[src][dst]
	q.Enqueue(now, p)
	c.curInterBits += p.Size
	if c.curInterBits > c.peakInterBits {
		c.peakInterBits = c.curInterBits
	}
}

// snapshot builds the rack-level demand the scheduler sees. The matrix
// comes from the demand pool; the scheduling loop releases it after use.
func (c *Cluster) snapshot(units.Time) *demand.Matrix {
	m := demand.FromPool(c.cfg.Racks)
	for i := range c.interVOQ {
		for j := range c.interVOQ[i] {
			bits := int64(c.interVOQ[i][j].Bits())
			if bits == 0 {
				continue
			}
			if c.cfg.Mode == Distributed {
				// Request bit only: presence, not magnitude.
				m.Set(i, j, 1)
			} else {
				m.Set(i, j, bits)
			}
		}
	}
	return m
}

// configure retears the core circuits with the OCS dead-time; in-flight
// uplink serializations are truncated, as on a real circuit switch.
func (c *Cluster) configure(m match.Matching, done func()) {
	c.reconfig = true
	c.epoch++
	c.configures.Inc()
	c.deadTime += c.cfg.CoreReconfig
	target := m.Clone()
	c.sim.Schedule(c.cfg.CoreReconfig, func() {
		c.circuits = target
		c.reconfig = false
		done()
	})
}

// grant drains each granted rack pair for the window.
func (c *Cluster) grant(m match.Matching, window units.Duration) {
	budget := units.TransferSize(c.cfg.UplinkRate, window)
	for src, dst := range m {
		if dst == match.Unmatched {
			continue
		}
		c.drain(src, dst, budget)
	}
}

func (c *Cluster) drain(src, dst int, budget units.Size) {
	q := c.interVOQ[src][dst]
	front := q.Front()
	if front == nil || front.Size > budget || c.reconfig || c.circuits[src] != dst {
		return
	}
	if free := c.uplinkBusy[src]; free > c.sim.Now() {
		left := budget
		c.sim.At(free, func() { c.drain(src, dst, left) })
		return
	}
	now := c.sim.Now()
	p := q.Dequeue(now)
	c.curInterBits -= p.Size
	txDone := now.Add(units.TransmitTime(p.Size, c.cfg.UplinkRate))
	c.uplinkBusy[src] = txDone
	epoch := c.epoch
	left := budget - p.Size
	c.sim.At(txDone.Add(c.cfg.TransitDelay), func() {
		if c.epoch != epoch {
			c.truncated.Inc()
		} else {
			// Arrived at the destination ToR; electrical hop to the host.
			c.bitsInter.Add(int64(p.Size))
			c.tors[c.RackOf(p.Dst)].Send(p)
		}
	})
	c.sim.At(txDone, func() { c.drain(src, dst, left) })
}

// deliver is the ToR->host egress for both intra- and inter-rack paths.
func (c *Cluster) deliver(p *packet.Packet, _ packet.Port) {
	p.DeliveredAt = c.sim.Now()
	lat := int64(p.Latency())
	if c.RackOf(p.Src) == c.RackOf(p.Dst) {
		c.deliveredIntra.Inc()
		c.latIntra.Record(lat)
	} else {
		c.deliveredInter.Inc()
		c.latInter.Record(lat)
	}
}

// Metrics is a cluster-level snapshot.
type Metrics struct {
	Injected       int64
	DeliveredIntra int64
	DeliveredInter int64
	InterBits      units.Size
	Truncated      int64
	LatencyIntra   stats.Summary
	LatencyInter   stats.Summary
	PeakInterVOQ   units.Size
	CoreConfigures int64
	CoreDutyCycle  float64
	Loop           sched.LoopStats
}

// Metrics returns the current snapshot.
func (c *Cluster) Metrics() Metrics {
	elapsed := units.Duration(c.sim.Now())
	duty := 0.0
	if elapsed > 0 {
		live := elapsed - c.deadTime
		if live < 0 {
			live = 0
		}
		duty = float64(live) / float64(elapsed)
	}
	return Metrics{
		Injected:       c.injected.Value(),
		DeliveredIntra: c.deliveredIntra.Value(),
		DeliveredInter: c.deliveredInter.Value(),
		InterBits:      units.Size(c.bitsInter.Value()),
		Truncated:      c.truncated.Value(),
		LatencyIntra:   c.latIntra.Summarize(),
		LatencyInter:   c.latInter.Summarize(),
		PeakInterVOQ:   c.peakInterBits,
		CoreConfigures: c.configures.Value(),
		CoreDutyCycle:  duty,
		Loop:           c.loop.Stats(),
	}
}
