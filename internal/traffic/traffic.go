// Package traffic generates the data-center workloads the framework is
// evaluated under: per-port Poisson, bursty ON/OFF, or flow-level arrival
// processes, destination patterns from uniform to heavily skewed, and
// size distributions from fixed frames to the published empirical
// flow-size CDFs (web search, data mining, Hadoop, cache follower) whose
// mice-and-elephants shape motivates hybrid switching (long bursts to the
// OCS, the rest to the EPS).
//
// Everything is seeded and deterministic: the same Config produces the
// same packet sequence.
package traffic

import (
	"fmt"

	"hybridsched/internal/packet"
	"hybridsched/internal/rng"
	"hybridsched/internal/sim"
	"hybridsched/internal/units"
)

// Pattern chooses the destination for each flow.
type Pattern interface {
	// Dst returns a destination port != src in [0, n).
	Dst(r *rng.Rand, src, n int) int
	// Name identifies the pattern in reports.
	Name() string
}

// Uniform spreads flows uniformly over all other ports.
type Uniform struct{}

// Dst implements Pattern.
func (Uniform) Dst(r *rng.Rand, src, n int) int {
	d := r.Intn(n - 1)
	if d >= src {
		d++
	}
	return d
}

// Name implements Pattern.
func (Uniform) Name() string { return "uniform" }

// Permutation sends all of a port's traffic to a single fixed partner — a
// matrix an optical circuit switch serves perfectly and an oblivious TDMA
// schedule serves at 1/(n-1) throughput. The permutation is a derangement
// drawn from the pattern seed.
type Permutation struct {
	perm []int
}

// NewPermutation draws a random derangement of n ports.
func NewPermutation(n int, seed uint64) *Permutation {
	return &Permutation{perm: rng.New(seed).Derangement(n)}
}

// Dst implements Pattern.
func (p *Permutation) Dst(_ *rng.Rand, src, n int) int { return p.perm[src] }

// Name implements Pattern.
func (p *Permutation) Name() string { return "permutation" }

// Hotspot sends a fraction of traffic to a few hot destinations and the
// rest uniformly — the skew knob for the hybrid-vs-EPS experiments.
type Hotspot struct {
	// Frac is the probability a flow targets a hot destination.
	Frac float64
	// Spots is the number of hot destinations (ports 0..Spots-1).
	Spots int
}

// Dst implements Pattern.
func (h Hotspot) Dst(r *rng.Rand, src, n int) int {
	if h.Spots > 0 && r.Bool(h.Frac) {
		d := r.Intn(h.Spots)
		if d != src {
			return d
		}
		// Fall through to uniform if we drew ourselves.
	}
	return Uniform{}.Dst(r, src, n)
}

// Name implements Pattern.
func (h Hotspot) Name() string { return fmt.Sprintf("hotspot-%d-%.0f%%", h.Spots, h.Frac*100) }

// Zipf ranks destinations per source (rotating so sources do not collide
// on rank order) and draws by a Zipf law with exponent S.
type Zipf struct {
	S       float64
	sampler *rng.ZipfSampler
}

// NewZipf returns a Zipf pattern over n-1 destinations.
func NewZipf(n int, s float64) *Zipf {
	return &Zipf{S: s, sampler: rng.NewZipfSampler(n-1, s)}
}

// Dst implements Pattern.
func (z *Zipf) Dst(r *rng.Rand, src, n int) int {
	rank := z.sampler.Sample(r)
	d := (src + 1 + rank) % n
	return d
}

// Name implements Pattern.
func (z *Zipf) Name() string { return fmt.Sprintf("zipf-%.1f", z.S) }

// SizeDist chooses packet sizes.
type SizeDist interface {
	Sample(r *rng.Rand) units.Size
	// Mean returns the expected size, used to calibrate offered load.
	Mean() units.Size
	Name() string
}

// Fixed always returns one size.
type Fixed struct{ Size units.Size }

// Sample implements SizeDist.
func (f Fixed) Sample(*rng.Rand) units.Size { return f.Size }

// Mean implements SizeDist.
func (f Fixed) Mean() units.Size { return f.Size }

// Name implements SizeDist.
func (f Fixed) Name() string { return fmt.Sprintf("fixed-%v", f.Size) }

// TrimodalInternet is the classic 64/576/1500-byte packet mix observed on
// real links.
type TrimodalInternet struct{}

// Sample implements SizeDist.
func (TrimodalInternet) Sample(r *rng.Rand) units.Size {
	u := r.Float64()
	switch {
	case u < 0.5:
		return 64 * units.Byte
	case u < 0.7:
		return 576 * units.Byte
	default:
		return 1500 * units.Byte
	}
}

// Mean implements SizeDist.
func (TrimodalInternet) Mean() units.Size {
	var meanBytes float64 = 0.5*64 + 0.2*576 + 0.3*1500 // 597.2 B
	return units.Size(meanBytes * 8)
}

// Name implements SizeDist.
func (TrimodalInternet) Name() string { return "trimodal" }

// Process selects the arrival process.
type Process uint8

// Process values.
const (
	// Poisson arrivals: memoryless interarrivals at the offered load.
	Poisson Process = iota
	// OnOff arrivals: Pareto-ish bursts at full line rate separated by
	// idle gaps — the "long bursts of traffic" hybrid switching targets.
	OnOff
	// FlowArrivals is the flow-level mode real workloads are published
	// in: flows arrive by a memoryless process calibrated to the offered
	// load, each flow draws its total size from FlowSizes (typically an
	// Empirical distribution), and the flow is segmented into MTU-sized
	// packets sent back-to-back at line rate.
	FlowArrivals
)

func (p Process) String() string {
	switch p {
	case OnOff:
		return "onoff"
	case FlowArrivals:
		return "flows"
	}
	return "poisson"
}

// Config parameterizes a generator.
type Config struct {
	Ports    int
	LineRate units.BitRate
	// Load is the offered load per port as a fraction of LineRate,
	// in (0, 1].
	Load    float64
	Pattern Pattern
	Sizes   SizeDist
	Process Process
	// BurstMeanPkts is the mean ON-burst length in packets (OnOff only).
	BurstMeanPkts float64
	// BurstPareto, if > 1, draws burst lengths from a Pareto distribution
	// with this shape instead of exponential.
	BurstPareto float64
	// FlowSizes is the per-flow total-size distribution (FlowArrivals
	// only). Required in that mode; Sizes is unused there.
	FlowSizes SizeDist
	// MTU is the segment size flows are cut into (FlowArrivals only;
	// 0 = 1500 bytes).
	MTU units.Size
	// LatencySensitiveFrac marks this fraction of flows as
	// ClassLatencySensitive (they will be pinned to the EPS by the
	// default classifier).
	LatencySensitiveFrac float64
	// Profile, when non-nil, modulates the offered load over simulated
	// time: the instantaneous load is Load * Profile.Factor(t), with
	// Factor in (0, 1] — Load is the peak. See Diurnal.
	Profile LoadProfile
	// Until stops generation at this simulated time.
	Until units.Time
	Seed  uint64
}

func (c *Config) validate() error {
	if c.Ports < 2 {
		return fmt.Errorf("traffic: need at least 2 ports (no self-traffic)")
	}
	if c.LineRate <= 0 {
		return fmt.Errorf("traffic: LineRate must be positive")
	}
	if c.Load <= 0 || c.Load > 1 {
		return fmt.Errorf("traffic: Load %v out of (0,1]", c.Load)
	}
	if c.Pattern == nil {
		return fmt.Errorf("traffic: Pattern is required")
	}
	if c.Process == FlowArrivals {
		if c.FlowSizes == nil {
			return fmt.Errorf("traffic: FlowSizes is required for flow-level arrivals")
		}
		// Segments below MinFrame would be padded up while the flow
		// accounting still advanced by MTU, silently inflating the
		// offered load — reject instead (0 keeps the 1500 B default).
		if c.MTU != 0 && (c.MTU < packet.MinFrame || c.MTU > packet.MaxFrame) {
			return fmt.Errorf("traffic: MTU %v out of [%v, %v]", c.MTU, packet.MinFrame, packet.MaxFrame)
		}
	} else if c.Sizes == nil {
		return fmt.Errorf("traffic: Pattern and Sizes are required")
	}
	if c.Until <= 0 {
		return fmt.Errorf("traffic: Until must be positive")
	}
	if c.Profile != nil {
		// Probe the profile at the window's edges: factors must stay in
		// (0, 1] (NaN fails both comparisons).
		for _, t := range []units.Time{0, units.Time(c.Until / 2)} {
			if f := c.Profile.Factor(t); !(f > 0 && f <= 1) {
				return fmt.Errorf("traffic: load profile %s factor %v at t=%v out of (0,1]",
					c.Profile.Name(), f, t)
			}
		}
	}
	return nil
}

// Validate reports whether the configuration is runnable as-is, without
// building a generator. It is how the public scenario builder validates
// eagerly.
func (c Config) Validate() error { return c.validate() }

// Generator drives per-port arrival processes. Create with New, then
// Start.
type Generator struct {
	cfg      Config
	dyn      DynamicPattern // non-nil when Pattern is time-varying
	emitted  int64
	bits     int64
	nextID   uint64
	nextFlow uint64
}

// New validates cfg and returns a generator.
func New(cfg Config) (*Generator, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.Process == OnOff && cfg.BurstMeanPkts <= 0 {
		cfg.BurstMeanPkts = 16
	}
	if cfg.Process == FlowArrivals && cfg.MTU == 0 {
		cfg.MTU = 1500 * units.Byte
	}
	g := &Generator{cfg: cfg}
	if d, ok := cfg.Pattern.(DynamicPattern); ok {
		g.dyn = d
	}
	return g, nil
}

// Emitted returns the number of packets generated so far.
func (g *Generator) Emitted() int64 { return g.emitted }

// BitsEmitted returns the volume generated so far.
func (g *Generator) BitsEmitted() units.Size { return units.Size(g.bits) }

// OfferedRate returns the configured per-port offered rate.
func (g *Generator) OfferedRate() units.BitRate {
	return units.BitRate(float64(g.cfg.LineRate) * g.cfg.Load)
}

// Start schedules the first arrival on every port. emit is called for
// each generated packet at its creation time.
func (g *Generator) Start(s *sim.Simulator, emit func(*packet.Packet)) {
	root := rng.New(g.cfg.Seed)
	for port := 0; port < g.cfg.Ports; port++ {
		r := root.Split()
		switch g.cfg.Process {
		case OnOff:
			g.startOnOff(s, port, r, emit)
		case FlowArrivals:
			g.startFlows(s, port, r, emit)
		default:
			g.startPoisson(s, port, r, emit)
		}
	}
}

// loadAt is the instantaneous offered load: the configured (peak) load
// attenuated by the profile, floored so a mis-shaped profile can never
// stall the arrival process.
func (g *Generator) loadAt(t units.Time) float64 {
	if g.cfg.Profile == nil {
		return g.cfg.Load
	}
	f := g.cfg.Profile.Factor(t)
	if f > 1 {
		f = 1
	}
	if f < minLoadFactor {
		f = minLoadFactor
	}
	return g.cfg.Load * f
}

// dst picks the destination for an arrival at simulated time now,
// routing through the time-varying hook when the pattern has one.
func (g *Generator) dst(r *rng.Rand, src int, now units.Time) int {
	if g.dyn != nil {
		return g.dyn.DstAt(r, src, g.cfg.Ports, now)
	}
	return g.cfg.Pattern.Dst(r, src, g.cfg.Ports)
}

// meanInterarrivalAt is the packet interarrival time that realizes the
// instantaneous offered load for the mean packet size. The truncation to
// Duration before the float return is deliberate: it is the historical
// computation, kept bit-identical so profile-free runs reproduce their
// golden digests.
func (g *Generator) meanInterarrivalAt(t units.Time) float64 {
	meanTx := units.TransmitTime(g.cfg.Sizes.Mean(), g.cfg.LineRate)
	return float64(units.Duration(float64(meanTx) / g.loadAt(t)))
}

func (g *Generator) makePacket(t units.Time, src, dst int, r *rng.Rand, flow uint64) *packet.Packet {
	size := g.cfg.Sizes.Sample(r)
	if size < packet.MinFrame {
		size = packet.MinFrame
	}
	if size > packet.MaxFrame {
		size = packet.MaxFrame
	}
	class := packet.ClassBestEffort
	if g.cfg.LatencySensitiveFrac > 0 && r.Bool(g.cfg.LatencySensitiveFrac) {
		class = packet.ClassLatencySensitive
	}
	return g.makePacketSized(t, src, dst, size, class, flow)
}

// makePacketSized stamps out one packet of a known size and class,
// updating the emission counters.
func (g *Generator) makePacketSized(t units.Time, src, dst int, size units.Size,
	class packet.Class, flow uint64) *packet.Packet {
	g.nextID++
	g.emitted++
	g.bits += int64(size)
	return &packet.Packet{
		ID:        g.nextID,
		Flow:      flow,
		Src:       packet.Port(src),
		Dst:       packet.Port(dst),
		Size:      size,
		Class:     class,
		CreatedAt: t,
	}
}

func (g *Generator) startPoisson(s *sim.Simulator, port int, r *rng.Rand, emit func(*packet.Packet)) {
	var arrive func()
	arrive = func() {
		now := s.Now()
		if now.After(g.cfg.Until) {
			return
		}
		dst := g.dst(r, port, now)
		g.nextFlow++
		emit(g.makePacket(now, port, dst, r, g.nextFlow))
		s.Schedule(units.Duration(r.Exp(g.meanInterarrivalAt(now))), arrive)
	}
	s.Schedule(units.Duration(r.Exp(g.meanInterarrivalAt(0))), arrive)
}

// startFlows drives the flow-level mode: flow arrivals are memoryless at
// the rate that realizes the offered load for the mean flow size, each
// flow draws its total size from FlowSizes and is segmented into MTU
// packets transmitted back-to-back at line rate — a burst whose length is
// the flow, which is exactly the structure hybrid switching exploits
// (elephants to the OCS, mice to the EPS).
func (g *Generator) startFlows(s *sim.Simulator, port int, r *rng.Rand, emit func(*packet.Packet)) {
	meanTx := units.TransmitTime(g.cfg.FlowSizes.Mean(), g.cfg.LineRate)
	// flowMean realizes the instantaneous load at the flow level; no
	// Duration truncation here (historical computation, kept exact).
	flowMean := func(t units.Time) float64 { return float64(meanTx) / g.loadAt(t) }
	var arrive func()
	arrive = func() {
		now := s.Now()
		if now.After(g.cfg.Until) {
			return
		}
		dst := g.dst(r, port, now)
		g.nextFlow++
		flow := g.nextFlow
		remaining := g.cfg.FlowSizes.Sample(r)
		if remaining < packet.MinFrame {
			remaining = packet.MinFrame
		}
		// The whole flow shares one class: LatencySensitiveFrac marks
		// flows, not packets.
		class := packet.ClassBestEffort
		if g.cfg.LatencySensitiveFrac > 0 && r.Bool(g.cfg.LatencySensitiveFrac) {
			class = packet.ClassLatencySensitive
		}
		var sendNext func()
		sendNext = func() {
			now := s.Now()
			if now.After(g.cfg.Until) {
				return
			}
			size := g.cfg.MTU
			if remaining <= size {
				size = remaining
				remaining = 0
			} else {
				remaining -= size
			}
			if size < packet.MinFrame {
				size = packet.MinFrame
			}
			p := g.makePacketSized(now, port, dst, size, class, flow)
			emit(p)
			if remaining > 0 {
				s.Schedule(units.TransmitTime(p.Size, g.cfg.LineRate), sendNext)
			}
		}
		sendNext()
		// Flow arrivals are open-loop: the next flow does not wait for
		// this one to finish transmitting.
		s.Schedule(units.Duration(r.Exp(flowMean(now))), arrive)
	}
	s.Schedule(units.Duration(r.Exp(flowMean(0))), arrive)
}

func (g *Generator) startOnOff(s *sim.Simulator, port int, r *rng.Rand, emit func(*packet.Packet)) {
	// During ON, packets are back-to-back at line rate. To hit the load,
	// mean OFF = mean ON * (1-load)/load.
	var startBurst func()
	startBurst = func() {
		if s.Now().After(g.cfg.Until) {
			return
		}
		var burstPkts int
		if g.cfg.BurstPareto > 1 {
			burstPkts = int(r.Pareto(1, g.cfg.BurstPareto) * g.cfg.BurstMeanPkts *
				(g.cfg.BurstPareto - 1) / g.cfg.BurstPareto)
		} else {
			burstPkts = int(r.Exp(g.cfg.BurstMeanPkts))
		}
		if burstPkts < 1 {
			burstPkts = 1
		}
		dst := g.dst(r, port, s.Now())
		g.nextFlow++
		flow := g.nextFlow
		var onTime units.Duration
		remaining := burstPkts
		var sendNext func()
		sendNext = func() {
			now := s.Now()
			if now.After(g.cfg.Until) {
				return
			}
			p := g.makePacket(now, port, dst, r, flow)
			emit(p)
			tx := units.TransmitTime(p.Size, g.cfg.LineRate)
			onTime += tx
			remaining--
			if remaining > 0 {
				s.Schedule(tx, sendNext)
				return
			}
			// Burst over: idle long enough to realize the instantaneous
			// load.
			l := g.loadAt(now)
			offMean := float64(onTime) * (1 - l) / l
			s.Schedule(tx+units.Duration(r.Exp(offMean)), startBurst)
		}
		sendNext()
	}
	s.Schedule(units.Duration(r.Exp(g.meanInterarrivalAt(0))), startBurst)
}
