package traffic

import (
	"math"
	"testing"

	"hybridsched/internal/packet"
	"hybridsched/internal/rng"
	"hybridsched/internal/sim"
	"hybridsched/internal/units"
)

// collect runs a generator to completion and returns the emitted packets.
func collect(t *testing.T, cfg Config) []*packet.Packet {
	t.Helper()
	g, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s := sim.New()
	var out []*packet.Packet
	g.Start(s, func(p *packet.Packet) { out = append(out, p) })
	s.RunUntil(cfg.Until)
	if len(out) == 0 {
		t.Fatal("generator emitted nothing")
	}
	return out
}

func dynBase(pattern Pattern) Config {
	return Config{
		Ports:    8,
		LineRate: 10 * units.Gbps,
		Load:     0.5,
		Pattern:  pattern,
		Sizes:    Fixed{Size: 1500 * units.Byte},
		Until:    units.Time(2 * units.Millisecond),
		Seed:     11,
	}
}

// TestRotatingPermutationChurns pins the hotspot-churn contract: inside
// one rotation epoch every source has exactly one destination; across
// epochs the mapping changes; and every epoch's mapping is a derangement.
func TestRotatingPermutationChurns(t *testing.T) {
	period := 500 * units.Microsecond
	cfg := dynBase(NewRotatingPermutation(8, period, 11))
	pkts := collect(t, cfg)

	perEpoch := map[int64]map[int]int{}
	for _, p := range pkts {
		epoch := int64(p.CreatedAt) / int64(period)
		m := perEpoch[epoch]
		if m == nil {
			m = map[int]int{}
			perEpoch[epoch] = m
		}
		src, dst := int(p.Src), int(p.Dst)
		if src == dst {
			t.Fatalf("self-traffic %d->%d", src, dst)
		}
		if prev, ok := m[src]; ok && prev != dst {
			t.Fatalf("epoch %d: source %d sent to both %d and %d", epoch, src, prev, dst)
		}
		m[src] = dst
	}
	if len(perEpoch) < 3 {
		t.Fatalf("run spanned only %d rotation epochs; want >= 3", len(perEpoch))
	}
	// At least one adjacent epoch pair must differ in some source's
	// destination (4 epochs of 8-port derangements colliding is ~0).
	changed := false
	for e := int64(0); e+1 < int64(len(perEpoch)); e++ {
		a, b := perEpoch[e], perEpoch[e+1]
		for src, dst := range a {
			if d2, ok := b[src]; ok && d2 != dst {
				changed = true
			}
		}
	}
	if !changed {
		t.Fatal("permutation never rotated across epochs")
	}
}

// TestIncastWaveConverges: during wave windows all foreign traffic hits
// the wave's victim; outside, destinations spread out.
func TestIncastWaveConverges(t *testing.T) {
	period := 400 * units.Microsecond
	duty := 0.5
	cfg := dynBase(IncastWave{Period: period, Duty: duty})
	pkts := collect(t, cfg)

	inWave, offWave := map[int]int{}, map[int]int{}
	for _, p := range pkts {
		wave := int64(p.CreatedAt) / int64(period)
		phase := int64(p.CreatedAt) % int64(period)
		victim := int(wave % int64(cfg.Ports))
		if float64(phase) < duty*float64(period) {
			if int(p.Src) != victim && int(p.Dst) != victim {
				t.Fatalf("in-wave packet %d->%d at %v missed victim %d",
					p.Src, p.Dst, p.CreatedAt, victim)
			}
			inWave[int(p.Dst)]++
		} else {
			offWave[int(p.Dst)]++
		}
	}
	if len(inWave) == 0 || len(offWave) == 0 {
		t.Fatalf("wave phases not both exercised: in=%d off=%d", len(inWave), len(offWave))
	}
	if len(offWave) < cfg.Ports/2 {
		t.Fatalf("off-wave traffic hit only %d destinations; want spread", len(offWave))
	}
}

// TestConferenceStaysInMeeting: every flow targets another member of the
// sender's own meeting.
func TestConferenceStaysInMeeting(t *testing.T) {
	const size = 4
	cfg := dynBase(Conference{Size: size})
	for _, p := range collect(t, cfg) {
		if p.Src == p.Dst {
			t.Fatalf("self-traffic on port %d", p.Src)
		}
		if int(p.Src)/size != int(p.Dst)/size {
			t.Fatalf("packet %d->%d crossed meeting boundary (size %d)", p.Src, p.Dst, size)
		}
	}
}

// TestConferenceTrailingSingletonFallsBack: a port whose trailing meeting
// has one member must still find a destination.
func TestConferenceTrailingSingletonFallsBack(t *testing.T) {
	cfg := dynBase(Conference{Size: 7}) // meetings {0..6}, {7}
	cfg.Ports = 8
	saw7 := false
	for _, p := range collect(t, cfg) {
		if p.Src == p.Dst {
			t.Fatalf("self-traffic on port %d", p.Src)
		}
		if p.Src == 7 {
			saw7 = true
		}
	}
	if !saw7 {
		t.Fatal("singleton meeting's port emitted nothing")
	}
}

// TestScaleFreeConcentrates: a strong power law must concentrate most
// traffic on a few globally hot ports, far beyond the uniform share.
func TestScaleFreeConcentrates(t *testing.T) {
	cfg := dynBase(NewScaleFree(8, 1.6, 11))
	counts := make([]int, cfg.Ports)
	total := 0
	for _, p := range collect(t, cfg) {
		counts[p.Dst]++
		total++
	}
	best, second := 0, 0
	for _, c := range counts {
		if c > best {
			best, second = c, best
		} else if c > second {
			second = c
		}
	}
	if frac := float64(best+second) / float64(total); frac < 0.5 {
		t.Fatalf("top-2 ports carry only %.0f%% of traffic; want >= 50%% under s=1.6", frac*100)
	}
}

// TestScaleFreeIsGlobal: every source agrees on the hottest port (modulo
// the self-traffic deflection), unlike the per-source-rotated Zipf.
func TestScaleFreeIsGlobal(t *testing.T) {
	p := NewScaleFree(8, 1.6, 11)
	r := rng.New(3)
	perSrc := map[int]map[int]int{}
	for i := 0; i < 4000; i++ {
		src := i % 8
		d := p.Dst(r, src, 8)
		if d == src {
			t.Fatalf("self-traffic from %d", src)
		}
		if perSrc[src] == nil {
			perSrc[src] = map[int]int{}
		}
		perSrc[src][d]++
	}
	hot := map[int]int{}
	for src, m := range perSrc {
		best, bestC := -1, 0
		for d, c := range m {
			if c > bestC {
				best, bestC = d, c
			}
		}
		if best != src { // the hub itself deflects to rank+1
			hot[best]++
		}
	}
	if len(hot) > 2 {
		t.Fatalf("sources disagree on the hot port: %v", hot)
	}
}

// TestDiurnalModulatesLoad: a diurnal profile must emit measurably fewer
// packets than the flat run, and the trough half-period must be quieter
// than the peak half-period.
func TestDiurnalModulatesLoad(t *testing.T) {
	period := 2 * units.Millisecond
	flat := dynBase(Uniform{})
	swung := flat
	swung.Profile = Diurnal{Period: period, Floor: 0.1}

	nFlat := len(collect(t, flat))
	pkts := collect(t, swung)
	if len(pkts) >= nFlat {
		t.Fatalf("diurnal run emitted %d >= flat run's %d", len(pkts), nFlat)
	}
	// t=0 is the peak; the middle half of the period is the trough.
	peak, trough := 0, 0
	for _, p := range pkts {
		phase := float64(int64(p.CreatedAt)%int64(period)) / float64(period)
		if phase < 0.25 || phase >= 0.75 {
			peak++
		} else {
			trough++
		}
	}
	if trough >= peak {
		t.Fatalf("trough half (%d pkts) not quieter than peak half (%d pkts)", trough, peak)
	}
}

// TestDiurnalFactorShape pins the raised-cosine endpoints.
func TestDiurnalFactorShape(t *testing.T) {
	d := Diurnal{Period: units.Duration(units.Millisecond), Floor: 0.2}
	if f := d.Factor(0); math.Abs(f-1.0) > 1e-12 {
		t.Fatalf("Factor(0) = %v, want 1.0", f)
	}
	if f := d.Factor(units.Time(units.Millisecond / 2)); math.Abs(f-0.2) > 1e-12 {
		t.Fatalf("Factor(T/2) = %v, want Floor 0.2", f)
	}
	for _, tt := range []units.Time{0, 1, units.Time(units.Microsecond), units.Time(3 * units.Millisecond / 4)} {
		if f := d.Factor(tt); f < 0.2-1e-12 || f > 1+1e-12 {
			t.Fatalf("Factor(%v) = %v out of [Floor, 1]", tt, f)
		}
	}
}

// TestProfileValidation: out-of-range profiles are rejected eagerly.
func TestProfileValidation(t *testing.T) {
	cfg := dynBase(Uniform{})
	cfg.Profile = badProfile{factor: 1.5}
	if _, err := New(cfg); err == nil {
		t.Fatal("factor > 1 accepted")
	}
	cfg.Profile = badProfile{factor: 0}
	if _, err := New(cfg); err == nil {
		t.Fatal("factor 0 accepted")
	}
	cfg.Profile = badProfile{factor: math.NaN()}
	if _, err := New(cfg); err == nil {
		t.Fatal("NaN factor accepted")
	}
}

type badProfile struct{ factor float64 }

func (b badProfile) Factor(units.Time) float64 { return b.factor }
func (b badProfile) Name() string              { return "bad" }

// TestDynamicDeterminism: every dynamic runs twice to the same packet
// sequence — the package-wide contract extended to the new vocabulary.
func TestDynamicDeterminism(t *testing.T) {
	mk := func() []Config {
		base := dynBase(nil)
		churn := base
		churn.Pattern = NewRotatingPermutation(8, 300*units.Microsecond, base.Seed)
		incast := base
		incast.Pattern = IncastWave{Period: 250 * units.Microsecond, Duty: 0.3}
		conf := base
		conf.Pattern = Conference{Size: 4}
		conf.Sizes = WebConference()
		conf.LatencySensitiveFrac = 0.8
		free := base
		free.Pattern = NewScaleFree(8, 1.4, base.Seed)
		diurnal := base
		diurnal.Pattern = Uniform{}
		diurnal.Profile = Diurnal{Period: units.Duration(units.Millisecond), Floor: 0.25}
		return []Config{churn, incast, conf, free, diurnal}
	}
	a, b := mk(), mk()
	for i := range a {
		pa, pb := collect(t, a[i]), collect(t, b[i])
		if len(pa) != len(pb) {
			t.Fatalf("config %d: %d vs %d packets", i, len(pa), len(pb))
		}
		for j := range pa {
			if *pa[j] != *pb[j] {
				t.Fatalf("config %d packet %d differs: %+v vs %+v", i, j, pa[j], pb[j])
			}
		}
	}
}

// TestWebConferenceSizesAreSmall: the conferencing mix is mice-dominated
// and legal as a per-packet distribution.
func TestWebConferenceSizesAreSmall(t *testing.T) {
	d := WebConference()
	r := rng.New(5)
	small := 0
	const n = 10000
	for i := 0; i < n; i++ {
		s := d.Sample(r)
		if s > 1200*units.Byte {
			t.Fatalf("sample %v above the 1200 B knot", s)
		}
		if s <= 320*units.Byte {
			small++
		}
	}
	if frac := float64(small) / n; frac < 0.6 {
		t.Fatalf("only %.0f%% of samples <= 320 B; want mice-dominated (>= 60%%)", frac*100)
	}
}
