package traffic

import (
	"fmt"

	"hybridsched/internal/rng"
	"hybridsched/internal/units"
)

// CDFPoint is one knot of an empirical size CDF: P(X <= Value) = Cum,
// with Value in bytes — the form flow-size distributions are published in
// by data-center measurement studies.
type CDFPoint = rng.CDFPoint

// Empirical samples sizes from a piecewise-linear empirical CDF given as
// (bytes, cumulative probability) knots — the mice-and-elephants flow-size
// distributions that motivate hybrid switching. Use it as
// Config.FlowSizes with the FlowArrivals process (its natural role: flows
// span kilobytes to hundreds of megabytes), or as a per-packet SizeDist,
// where samples are clamped to legal frame bounds.
//
// Sampling is inverse-transform with linear interpolation between knots,
// deterministic per seed like every other distribution here.
type Empirical struct {
	name string
	cdf  *rng.EmpiricalCDF
	mean units.Size
}

// NewEmpirical builds a sampler from knots sorted by Value (bytes) with
// Cum non-decreasing and ending at 1.0. Like rng.NewEmpiricalCDF it
// panics on malformed input: CDF tables are static program data.
func NewEmpirical(name string, points []CDFPoint) *Empirical {
	cdf := rng.NewEmpiricalCDF(points)
	return &Empirical{
		name: name,
		cdf:  cdf,
		mean: units.Size(cdf.Mean() * float64(units.Byte)),
	}
}

// Sample implements SizeDist; the returned size is in bits.
func (e *Empirical) Sample(r *rng.Rand) units.Size {
	return units.Size(e.cdf.Sample(r) * float64(units.Byte))
}

// Mean implements SizeDist: the analytic mean of the piecewise-linear
// distribution, used to calibrate offered load.
func (e *Empirical) Mean() units.Size { return e.mean }

// Name implements SizeDist.
func (e *Empirical) Name() string { return fmt.Sprintf("empirical-%s", e.name) }

// CDF exposes the underlying sampler, so reports and statistical tests
// can enumerate the target distribution's knots.
func (e *Empirical) CDF() *rng.EmpiricalCDF { return e.cdf }

// The built-in distributions below are digitized approximations of
// published data-center flow-size CDFs. Values are flow sizes in bytes.
// The samplers are immutable after construction and safe to share across
// concurrently running scenarios.
var (
	// webSearch approximates the web-search workload of DCTCP (Alizadeh
	// et al., SIGCOMM 2010): query traffic with a heavy tail of multi-
	// megabyte background flows. Over half the bytes come from flows
	// above 1 MB while most flows stay under 100 KB.
	webSearch = NewEmpirical("websearch", []CDFPoint{
		{Value: 1e3, Cum: 0},
		{Value: 1e4, Cum: 0.15},
		{Value: 2e4, Cum: 0.20},
		{Value: 3e4, Cum: 0.30},
		{Value: 5e4, Cum: 0.40},
		{Value: 8e4, Cum: 0.53},
		{Value: 2e5, Cum: 0.60},
		{Value: 1e6, Cum: 0.70},
		{Value: 2e6, Cum: 0.80},
		{Value: 5e6, Cum: 0.90},
		{Value: 1e7, Cum: 0.97},
		{Value: 3e7, Cum: 1.0},
	})

	// dataMining approximates the data-mining workload of VL2 (Greenberg
	// et al., SIGCOMM 2009): the most extreme mice-and-elephants mix in
	// the literature — over half the flows are under 2 KB, yet nearly
	// all bytes ride flows above 100 MB.
	dataMining = NewEmpirical("datamining", []CDFPoint{
		{Value: 100, Cum: 0},
		{Value: 180, Cum: 0.10},
		{Value: 250, Cum: 0.20},
		{Value: 560, Cum: 0.30},
		{Value: 900, Cum: 0.35},
		{Value: 1.1e3, Cum: 0.40},
		{Value: 1.87e3, Cum: 0.53},
		{Value: 3.16e3, Cum: 0.60},
		{Value: 1e4, Cum: 0.70},
		{Value: 4e5, Cum: 0.80},
		{Value: 3.16e6, Cum: 0.90},
		{Value: 1e8, Cum: 0.97},
		{Value: 1e9, Cum: 1.0},
	})

	// hadoop approximates the Hadoop-cluster workload measured inside
	// Facebook's data centers (Roy et al., SIGCOMM 2015): dominated by
	// sub-10 KB RPCs with a thin tail reaching ~100 MB shuffle flows.
	hadoop = NewEmpirical("hadoop", []CDFPoint{
		{Value: 64, Cum: 0},
		{Value: 256, Cum: 0.15},
		{Value: 512, Cum: 0.35},
		{Value: 1e3, Cum: 0.50},
		{Value: 2e3, Cum: 0.63},
		{Value: 4e3, Cum: 0.73},
		{Value: 1e4, Cum: 0.83},
		{Value: 1e5, Cum: 0.92},
		{Value: 1e6, Cum: 0.97},
		{Value: 1e7, Cum: 0.99},
		{Value: 1e8, Cum: 1.0},
	})

	// cacheFollower approximates the cache-follower workload from the
	// same Facebook study: web-cache traffic of small objects with a
	// moderate tail of multi-megabyte responses.
	cacheFollower = NewEmpirical("cachefollower", []CDFPoint{
		{Value: 64, Cum: 0},
		{Value: 512, Cum: 0.15},
		{Value: 1e3, Cum: 0.30},
		{Value: 2e3, Cum: 0.45},
		{Value: 4e3, Cum: 0.55},
		{Value: 1e4, Cum: 0.68},
		{Value: 6.4e4, Cum: 0.80},
		{Value: 2.56e5, Cum: 0.90},
		{Value: 1e6, Cum: 0.97},
		{Value: 1e7, Cum: 1.0},
	})
)

// WebSearch returns the DCTCP web-search flow-size distribution.
func WebSearch() *Empirical { return webSearch }

// DataMining returns the VL2 data-mining flow-size distribution.
func DataMining() *Empirical { return dataMining }

// Hadoop returns the Facebook Hadoop-cluster flow-size distribution.
func Hadoop() *Empirical { return hadoop }

// CacheFollower returns the Facebook cache-follower flow-size
// distribution.
func CacheFollower() *Empirical { return cacheFollower }

// EmpiricalByName looks up a built-in empirical distribution by its short
// name (websearch, datamining, hadoop, cachefollower) — the form sweeps
// and command-line tools select distributions in.
func EmpiricalByName(name string) (*Empirical, bool) {
	switch name {
	case "websearch":
		return webSearch, true
	case "datamining":
		return dataMining, true
	case "hadoop":
		return hadoop, true
	case "cachefollower":
		return cacheFollower, true
	}
	return nil, false
}
