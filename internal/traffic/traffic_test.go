package traffic

import (
	"math"
	"testing"

	"hybridsched/internal/packet"
	"hybridsched/internal/rng"
	"hybridsched/internal/sim"
	"hybridsched/internal/units"
)

func baseConfig() Config {
	return Config{
		Ports:    8,
		LineRate: 10 * units.Gbps,
		Load:     0.5,
		Pattern:  Uniform{},
		Sizes:    Fixed{1500 * units.Byte},
		Until:    units.Time(10 * units.Millisecond),
		Seed:     42,
	}
}

func TestValidation(t *testing.T) {
	bad := []func(c *Config){
		func(c *Config) { c.Ports = 0 },
		func(c *Config) { c.LineRate = 0 },
		func(c *Config) { c.Load = 0 },
		func(c *Config) { c.Load = 1.5 },
		func(c *Config) { c.Pattern = nil },
		func(c *Config) { c.Sizes = nil },
		func(c *Config) { c.Until = 0 },
	}
	for i, mutate := range bad {
		c := baseConfig()
		mutate(&c)
		if _, err := New(c); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
	if _, err := New(baseConfig()); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
}

func TestPoissonOfferedLoad(t *testing.T) {
	cfg := baseConfig()
	g, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s := sim.New()
	var bits int64
	g.Start(s, func(p *packet.Packet) { bits += int64(p.Size) })
	s.RunUntil(cfg.Until)

	elapsed := units.Duration(cfg.Until).Seconds()
	wantBits := float64(cfg.LineRate) * cfg.Load * elapsed * float64(cfg.Ports)
	got := float64(bits)
	if math.Abs(got-wantBits)/wantBits > 0.05 {
		t.Fatalf("offered %v bits, want ~%v (±5%%)", got, wantBits)
	}
	if g.BitsEmitted() != units.Size(bits) {
		t.Fatal("BitsEmitted disagrees with callback sum")
	}
}

func TestOnOffOfferedLoad(t *testing.T) {
	cfg := baseConfig()
	cfg.Process = OnOff
	cfg.BurstMeanPkts = 32
	g, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s := sim.New()
	var bits int64
	g.Start(s, func(p *packet.Packet) { bits += int64(p.Size) })
	s.RunUntil(cfg.Until)

	elapsed := units.Duration(cfg.Until).Seconds()
	wantBits := float64(cfg.LineRate) * cfg.Load * elapsed * float64(cfg.Ports)
	got := float64(bits)
	if math.Abs(got-wantBits)/wantBits > 0.15 {
		t.Fatalf("ON/OFF offered %v bits, want ~%v (±15%%)", got, wantBits)
	}
}

func TestOnOffBurstsShareDestinationAndFlow(t *testing.T) {
	cfg := baseConfig()
	cfg.Process = OnOff
	cfg.BurstMeanPkts = 16
	g, _ := New(cfg)
	s := sim.New()
	flowDst := map[uint64]packet.Port{}
	g.Start(s, func(p *packet.Packet) {
		if dst, seen := flowDst[p.Flow]; seen && dst != p.Dst {
			t.Fatalf("flow %d changed destination %d -> %d", p.Flow, dst, p.Dst)
		}
		flowDst[p.Flow] = p.Dst
	})
	s.RunUntil(cfg.Until)
	if len(flowDst) < 10 {
		t.Fatalf("too few flows: %d", len(flowDst))
	}
}

func TestOnOffBurstinessExceedsPoisson(t *testing.T) {
	// Measure max bits in any 100us window; ON/OFF at the same load must
	// be burstier.
	maxWindow := func(process Process) int64 {
		cfg := baseConfig()
		cfg.Process = process
		cfg.BurstMeanPkts = 64
		cfg.Ports = 2
		g, _ := New(cfg)
		s := sim.New()
		window := units.Duration(100 * units.Microsecond)
		var cur, best int64
		var windowStart units.Time
		g.Start(s, func(p *packet.Packet) {
			if p.CreatedAt.Sub(windowStart) > window {
				windowStart = p.CreatedAt
				cur = 0
			}
			cur += int64(p.Size)
			if cur > best {
				best = cur
			}
		})
		s.RunUntil(cfg.Until)
		return best
	}
	poisson := maxWindow(Poisson)
	onoff := maxWindow(OnOff)
	if onoff <= poisson {
		t.Fatalf("ON/OFF peak window %d <= Poisson %d; burstiness lost", onoff, poisson)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() []uint64 {
		g, _ := New(baseConfig())
		s := sim.New()
		var ids []uint64
		g.Start(s, func(p *packet.Packet) {
			ids = append(ids, p.ID, uint64(p.Src), uint64(p.Dst), uint64(p.Size))
		})
		s.RunUntil(baseConfig().Until)
		return ids
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("streams diverge at %d", i)
		}
	}
}

func TestNoSelfTraffic(t *testing.T) {
	for _, pat := range []Pattern{
		Uniform{},
		NewPermutation(8, 7),
		Hotspot{Frac: 0.9, Spots: 2},
		NewZipf(8, 1.2),
	} {
		r := rng.New(5)
		for trial := 0; trial < 2000; trial++ {
			src := trial % 8
			if d := pat.Dst(r, src, 8); d == src || d < 0 || d >= 8 {
				t.Fatalf("%s: bad destination %d for src %d", pat.Name(), d, src)
			}
		}
	}
}

func TestPermutationIsFixed(t *testing.T) {
	p := NewPermutation(8, 3)
	r := rng.New(1)
	first := p.Dst(r, 2, 8)
	for i := 0; i < 100; i++ {
		if p.Dst(r, 2, 8) != first {
			t.Fatal("permutation pattern must be static")
		}
	}
}

func TestHotspotConcentration(t *testing.T) {
	h := Hotspot{Frac: 0.8, Spots: 2}
	r := rng.New(9)
	hot := 0
	const n = 10000
	for i := 0; i < n; i++ {
		if d := h.Dst(r, 5, 16); d < 2 {
			hot++
		}
	}
	frac := float64(hot) / n
	if frac < 0.7 || frac > 0.9 {
		t.Fatalf("hot fraction %.2f, want ~0.8", frac)
	}
}

func TestZipfSkewOrdering(t *testing.T) {
	z := NewZipf(16, 1.5)
	r := rng.New(11)
	counts := map[int]int{}
	for i := 0; i < 20000; i++ {
		counts[z.Dst(r, 0, 16)]++
	}
	// Rank-0 destination for src 0 is port 1.
	if counts[1] <= counts[8] {
		t.Fatalf("zipf rank ordering broken: %v", counts)
	}
}

func TestSizeClamping(t *testing.T) {
	cfg := baseConfig()
	cfg.Sizes = Fixed{1 * units.Byte} // below MinFrame
	g, _ := New(cfg)
	s := sim.New()
	g.Start(s, func(p *packet.Packet) {
		if p.Size < packet.MinFrame {
			t.Fatalf("size %v below minimum frame", p.Size)
		}
	})
	s.RunUntil(units.Time(units.Millisecond))
}

func TestLatencySensitiveMarking(t *testing.T) {
	cfg := baseConfig()
	cfg.LatencySensitiveFrac = 0.3
	g, _ := New(cfg)
	s := sim.New()
	var sensitive, total int
	g.Start(s, func(p *packet.Packet) {
		total++
		if p.Class == packet.ClassLatencySensitive {
			sensitive++
		}
	})
	s.RunUntil(cfg.Until)
	frac := float64(sensitive) / float64(total)
	if math.Abs(frac-0.3) > 0.05 {
		t.Fatalf("latency-sensitive fraction %.2f, want ~0.3", frac)
	}
}

func TestTrimodalMean(t *testing.T) {
	d := TrimodalInternet{}
	r := rng.New(21)
	var sum float64
	const n = 100000
	for i := 0; i < n; i++ {
		sum += float64(d.Sample(r))
	}
	got := sum / n
	want := float64(d.Mean())
	if math.Abs(got-want)/want > 0.02 {
		t.Fatalf("sample mean %.0f, analytic %.0f", got, want)
	}
}

func TestGenerationStopsAtUntil(t *testing.T) {
	cfg := baseConfig()
	g, _ := New(cfg)
	s := sim.New()
	var last units.Time
	g.Start(s, func(p *packet.Packet) { last = p.CreatedAt })
	s.Run() // run to exhaustion: generator must terminate the event stream
	if last.After(cfg.Until) {
		t.Fatalf("packet generated at %v after Until %v", last, cfg.Until)
	}
}
