package traffic

import (
	"math"
	"testing"

	"hybridsched/internal/packet"
	"hybridsched/internal/rng"
	"hybridsched/internal/sim"
	"hybridsched/internal/units"
)

func builtins() []*Empirical {
	return []*Empirical{WebSearch(), DataMining(), Hadoop(), CacheFollower()}
}

// TestEmpiricalDeterministicPerSeed pins the reproducibility contract:
// the same seed yields the same sample sequence, a different seed a
// different one.
func TestEmpiricalDeterministicPerSeed(t *testing.T) {
	for _, e := range builtins() {
		draw := func(seed uint64) []units.Size {
			r := rng.New(seed)
			out := make([]units.Size, 256)
			for i := range out {
				out[i] = e.Sample(r)
			}
			return out
		}
		a, b := draw(7), draw(7)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: sample %d differs across identical seeds: %v vs %v", e.Name(), i, a[i], b[i])
			}
		}
		c := draw(8)
		same := true
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatalf("%s: seeds 7 and 8 produced identical sequences", e.Name())
		}
	}
}

// knots exposes each built-in's committed CDF table for the statistical
// conformance test below.
func knots(e *Empirical) []CDFPoint { return e.cdf.Points() }

// TestEmpiricalMatchesTargetCDF is the committed statistical test: the
// empirical CDF of a large sample, evaluated at every knot of the target
// table, must match the table's cumulative probability within a tolerance
// far above the expected sampling error (~0.002 at n=100000).
func TestEmpiricalMatchesTargetCDF(t *testing.T) {
	const n = 100000
	const tol = 0.01
	for _, e := range builtins() {
		r := rng.New(1)
		samples := make([]float64, n)
		for i := range samples {
			samples[i] = float64(e.Sample(r)) / float64(units.Byte)
		}
		for _, k := range knots(e) {
			atOrBelow := 0
			for _, s := range samples {
				if s <= k.Value {
					atOrBelow++
				}
			}
			got := float64(atOrBelow) / n
			if math.Abs(got-k.Cum) > tol {
				t.Errorf("%s: P(X <= %.0fB) = %.4f, want %.2f ±%.2f",
					e.Name(), k.Value, got, k.Cum, tol)
			}
		}
	}
}

// TestEmpiricalMeanMatchesSamples cross-checks the analytic Mean (used to
// calibrate offered load) against the sample mean.
func TestEmpiricalMeanMatchesSamples(t *testing.T) {
	const n = 200000
	for _, e := range builtins() {
		r := rng.New(3)
		var sum float64
		for i := 0; i < n; i++ {
			sum += float64(e.Sample(r))
		}
		got := sum / n
		want := float64(e.Mean())
		if math.Abs(got-want)/want > 0.05 {
			t.Errorf("%s: sample mean %.0f bits vs analytic %.0f bits (>5%%)", e.Name(), got, want)
		}
	}
}

// flowConfig is a flow-level workload over a small empirical distribution
// (mean ~14 KB), sized so a short simulation still sees thousands of
// flows.
func flowConfig() Config {
	return Config{
		Ports:    8,
		LineRate: 10 * units.Gbps,
		Load:     0.5,
		Pattern:  Uniform{},
		Process:  FlowArrivals,
		FlowSizes: NewEmpirical("test-small", []CDFPoint{
			{Value: 200, Cum: 0},
			{Value: 1e3, Cum: 0.4},
			{Value: 1e4, Cum: 0.8},
			{Value: 1e5, Cum: 1.0},
		}),
		Until: units.Time(50 * units.Millisecond),
		Seed:  42,
	}
}

// TestFlowArrivalsOfferedLoad checks the flow-level mode realizes the
// configured load: total offered bits over the run must approximate
// rate * load * time * ports.
func TestFlowArrivalsOfferedLoad(t *testing.T) {
	cfg := flowConfig()
	g, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s := sim.New()
	var bits int64
	flows := map[uint64]int{}
	g.Start(s, func(p *packet.Packet) {
		bits += int64(p.Size)
		flows[p.Flow]++
	})
	s.Run()

	elapsed := units.Duration(cfg.Until).Seconds()
	wantBits := float64(cfg.LineRate) * cfg.Load * elapsed * float64(cfg.Ports)
	if got := float64(bits); math.Abs(got-wantBits)/wantBits > 0.10 {
		t.Fatalf("offered %v bits, want ~%v (±10%%)", got, wantBits)
	}
	if len(flows) < 1000 {
		t.Fatalf("only %d flows in 50ms; flow arrivals are too sparse", len(flows))
	}
	multi := 0
	for _, pkts := range flows {
		if pkts > 1 {
			multi++
		}
	}
	if multi == 0 {
		t.Fatal("no flow was segmented into multiple packets")
	}
}

// TestFlowArrivalsSegmentation checks every emitted packet respects the
// MTU and frame bounds, and that a flow's packets are back-to-back at
// line rate with all segments equal to the MTU except the last.
func TestFlowArrivalsSegmentation(t *testing.T) {
	cfg := flowConfig()
	cfg.Ports = 2
	cfg.MTU = 1000 * units.Byte
	cfg.Until = units.Time(10 * units.Millisecond)
	g, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s := sim.New()
	type ev struct {
		at   units.Time
		size units.Size
	}
	perFlow := map[uint64][]ev{}
	g.Start(s, func(p *packet.Packet) {
		if p.Size < packet.MinFrame || p.Size > packet.MaxFrame {
			t.Fatalf("packet size %v outside frame bounds", p.Size)
		}
		if p.Size > cfg.MTU {
			t.Fatalf("packet size %v exceeds MTU %v", p.Size, cfg.MTU)
		}
		perFlow[p.Flow] = append(perFlow[p.Flow], ev{s.Now(), p.Size})
	})
	s.Run()
	checkedGaps := false
	for flow, evs := range perFlow {
		for i, e := range evs[:len(evs)-1] {
			if e.size != cfg.MTU {
				t.Fatalf("flow %d segment %d is %v, want MTU %v", flow, i, e.size, cfg.MTU)
			}
			gap := evs[i+1].at.Sub(e.at)
			if want := units.TransmitTime(e.size, cfg.LineRate); gap != want {
				t.Fatalf("flow %d: gap %v between segments, want line-rate %v", flow, gap, want)
			}
			checkedGaps = true
		}
	}
	if !checkedGaps {
		t.Fatal("no multi-segment flow observed")
	}
}

// TestFlowArrivalsValidation covers the flow-mode configuration errors.
func TestFlowArrivalsValidation(t *testing.T) {
	cfg := flowConfig()
	cfg.FlowSizes = nil
	if _, err := New(cfg); err == nil {
		t.Fatal("expected error for FlowArrivals without FlowSizes")
	}
	cfg = flowConfig()
	cfg.MTU = packet.MaxFrame + units.Byte
	if _, err := New(cfg); err == nil {
		t.Fatal("expected error for MTU above the jumbo bound")
	}
	// Sub-MinFrame MTUs would be padded per segment while the flow
	// accounting advanced by MTU, inflating the offered load — rejected.
	cfg = flowConfig()
	cfg.MTU = packet.MinFrame - units.Byte
	if _, err := New(cfg); err == nil {
		t.Fatal("expected error for MTU below the minimum frame")
	}
	// Sizes is not required in flow mode.
	cfg = flowConfig()
	cfg.Sizes = nil
	if _, err := New(cfg); err != nil {
		t.Fatalf("flow mode should not require Sizes: %v", err)
	}
}

// TestEmpiricalByName pins the lookup used by sweeps and tools.
func TestEmpiricalByName(t *testing.T) {
	for _, name := range []string{"websearch", "datamining", "hadoop", "cachefollower"} {
		e, ok := EmpiricalByName(name)
		if !ok || e == nil {
			t.Fatalf("EmpiricalByName(%q) not found", name)
		}
	}
	if _, ok := EmpiricalByName("bitcoin"); ok {
		t.Fatal("unknown name should not resolve")
	}
}
