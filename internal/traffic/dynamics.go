package traffic

// Time-varying workload dynamics: the scenario-diversity layer over the
// static patterns and processes. Two extension points make a workload
// dynamic without touching the generator's arrival machinery:
//
//   - DynamicPattern: a Pattern whose destination choice depends on the
//     simulated time (hotspot churn, incast waves).
//   - LoadProfile: a multiplicative modulation of the offered load over
//     simulated time (diurnal swings).
//
// Plus two stationary patterns grounded in the related-work stressors:
// Conference (DimDim-style web-conferencing groups: many small,
// latency-sensitive bidirectional flows) and ScaleFree (globally skewed
// destination popularity: load concentrating on a few hot ports).
//
// Everything here follows the package's determinism contract: the same
// configuration and seed produce the same packet sequence. Dynamic
// patterns that carry per-run caching state (RotatingPermutation) must
// not be shared between concurrently executing scenarios — build a fresh
// instance per scenario, which is what the scenario-pack loader does.

import (
	"fmt"
	"math"

	"hybridsched/internal/rng"
	"hybridsched/internal/units"
)

// DynamicPattern is the optional time-varying extension of Pattern: when
// a Config's Pattern implements it, the generator calls DstAt with the
// simulated arrival time instead of Dst. Implementations must stay
// deterministic in (seed, time).
type DynamicPattern interface {
	Pattern
	// DstAt returns a destination port != src in [0, n) for an arrival
	// at simulated time now.
	DstAt(r *rng.Rand, src, n int, now units.Time) int
}

// LoadProfile modulates the offered load over simulated time: the
// instantaneous load is Config.Load * Factor(t). Factor must return a
// value in (0, 1] — a profile attenuates from the configured peak load,
// it never raises it above Load (which Validate has already bounded).
type LoadProfile interface {
	Factor(t units.Time) float64
	// Name identifies the profile in reports.
	Name() string
}

// minLoadFactor floors the profile modulation so a mis-shaped profile
// can never stall the arrival process entirely.
const minLoadFactor = 1e-3

// epochSeed derives the deterministic sub-seed for rotation epoch i of a
// pattern seeded with seed — a SplitMix64 step over the mixed state, so
// consecutive epochs are decorrelated.
func epochSeed(seed uint64, epoch int64) uint64 {
	state := seed ^ (uint64(epoch) * 0x9e3779b97f4a7c15)
	return rng.SplitMix64(&state)
}

// RotatingPermutation is hotspot churn: permutation demand whose
// derangement is redrawn every Period of simulated time, so the set of
// hot (input, output) pairs rotates mid-run. Each epoch's derangement is
// derived deterministically from (seed, epoch), so runs are reproducible
// and an instant can be evaluated out of order.
//
// The pattern caches the current epoch's derangement; a single instance
// must not be shared between concurrently executing scenarios.
type RotatingPermutation struct {
	period units.Duration
	seed   uint64
	n      int

	epoch int64 // epoch the cached derangement belongs to
	perm  []int
}

// NewRotatingPermutation builds the churn pattern for n ports rotating
// every period. It panics on a non-positive period or n < 2, since
// patterns are static program data; the scenario loader validates first.
func NewRotatingPermutation(n int, period units.Duration, seed uint64) *RotatingPermutation {
	if n < 2 {
		panic("traffic: RotatingPermutation needs n >= 2")
	}
	if period <= 0 {
		panic("traffic: RotatingPermutation needs a positive period")
	}
	p := &RotatingPermutation{period: period, seed: seed, n: n, epoch: -1}
	p.rotate(0)
	return p
}

// rotate replaces the cached derangement with the one for epoch.
func (p *RotatingPermutation) rotate(epoch int64) {
	p.perm = rng.New(epochSeed(p.seed, epoch)).Derangement(p.n)
	p.epoch = epoch
}

// DstAt implements DynamicPattern.
func (p *RotatingPermutation) DstAt(_ *rng.Rand, src, n int, now units.Time) int {
	if epoch := int64(now) / int64(p.period); epoch != p.epoch {
		p.rotate(epoch)
	}
	return p.perm[src]
}

// Dst implements Pattern (the epoch-0 derangement, for callers without a
// clock).
func (p *RotatingPermutation) Dst(r *rng.Rand, src, n int) int {
	return p.DstAt(r, src, n, 0)
}

// Name implements Pattern.
func (p *RotatingPermutation) Name() string {
	return fmt.Sprintf("hotspot-churn-%v", p.period)
}

// IncastWave drives periodic many-to-one convergence: during the first
// Duty fraction of every Period, all sources target a single victim port
// (rotating per wave so no port is the permanent victim); outside the
// wave, traffic is uniform. This is the synchronized-fan-in burst that
// fills one output's VOQ column — the worst case for per-output fairness
// and the EPS drain path. IncastWave is immutable and safe to share.
type IncastWave struct {
	// Period is the wave repetition period. Required.
	Period units.Duration
	// Duty is the in-wave fraction of each period, in (0, 1].
	Duty float64
}

// victim returns wave w's target port for an n-port fabric.
func (iw IncastWave) victim(wave int64, n int) int {
	return int(wave % int64(n))
}

// DstAt implements DynamicPattern.
func (iw IncastWave) DstAt(r *rng.Rand, src, n int, now units.Time) int {
	wave := int64(now) / int64(iw.Period)
	phase := int64(now) % int64(iw.Period)
	if float64(phase) < iw.Duty*float64(iw.Period) {
		v := iw.victim(wave, n)
		if v != src {
			return v
		}
		// The victim itself falls back to uniform background traffic.
	}
	return Uniform{}.Dst(r, src, n)
}

// Dst implements Pattern.
func (iw IncastWave) Dst(r *rng.Rand, src, n int) int { return iw.DstAt(r, src, n, 0) }

// Name implements Pattern.
func (iw IncastWave) Name() string {
	return fmt.Sprintf("incast-%v-%.0f%%", iw.Period, iw.Duty*100)
}

// Conference is the DimDim-style web-conferencing pattern: ports are
// grouped into fixed meetings of Size consecutive ports, and every flow
// targets a uniformly chosen other member of the sender's own meeting —
// so all traffic is small-group bidirectional, the many-small-flows
// regime that stresses the EPS side. Pair it with WebConference sizes
// and a high LatencySensitiveFrac. Conference is immutable and safe to
// share.
type Conference struct {
	// Size is the meeting size in ports (>= 2). The trailing meeting is
	// whatever remains; a trailing singleton falls back to uniform.
	Size int
}

// Dst implements Pattern.
func (c Conference) Dst(r *rng.Rand, src, n int) int {
	base := (src / c.Size) * c.Size
	m := c.Size
	if base+m > n {
		m = n - base
	}
	if m < 2 {
		return Uniform{}.Dst(r, src, n)
	}
	d := base + r.Intn(m-1)
	if d >= src {
		d++
	}
	return d
}

// Name implements Pattern.
func (c Conference) Name() string { return fmt.Sprintf("conference-%d", c.Size) }

// ScaleFree draws destinations by a power law over a globally fixed
// popularity ranking: unlike Zipf, whose per-source rank rotation
// spreads the skew, every source agrees on which ports are hot, so
// demand concentrates on a few hub columns — the communication
// bottleneck of scale-free topologies. ScaleFree is immutable after
// construction and safe to share.
type ScaleFree struct {
	s       float64
	sampler *rng.ZipfSampler
	rank    []int // rank -> port, a seeded shuffle so hubs are not always port 0
}

// NewScaleFree builds the pattern for n ports with power-law exponent s
// (> 0; larger is more skewed). The rank-to-port assignment is drawn
// from seed. It panics on n < 2 or s <= 0; the scenario loader validates
// first.
func NewScaleFree(n int, s float64, seed uint64) *ScaleFree {
	if n < 2 {
		panic("traffic: ScaleFree needs n >= 2")
	}
	if s <= 0 {
		panic("traffic: ScaleFree needs exponent s > 0")
	}
	return &ScaleFree{
		s:       s,
		sampler: rng.NewZipfSampler(n, s),
		rank:    rng.New(seed).Perm(n),
	}
}

// Dst implements Pattern.
func (z *ScaleFree) Dst(r *rng.Rand, src, n int) int {
	k := z.sampler.Sample(r)
	d := z.rank[k]
	if d == src {
		d = z.rank[(k+1)%len(z.rank)]
	}
	return d
}

// Name implements Pattern.
func (z *ScaleFree) Name() string { return fmt.Sprintf("scalefree-%.1f", z.s) }

// Diurnal is the load-swing profile: a raised cosine starting at the
// configured peak load (factor 1.0 at t=0), dipping to Floor half a
// Period later, and back — the day/night cycle compressed to simulation
// scale. Diurnal is immutable and safe to share.
type Diurnal struct {
	// Period is the full swing period. Required.
	Period units.Duration
	// Floor is the minimum load factor, in (0, 1].
	Floor float64
}

// Factor implements LoadProfile.
func (d Diurnal) Factor(t units.Time) float64 {
	phase := 2 * math.Pi * float64(int64(t)%int64(d.Period)) / float64(d.Period)
	return d.Floor + (1-d.Floor)*(0.5+0.5*math.Cos(phase))
}

// Name implements LoadProfile.
func (d Diurnal) Name() string { return fmt.Sprintf("diurnal-%v-%.0f%%", d.Period, d.Floor*100) }

// WebConference returns the packet-size mix of interactive
// web-conferencing traffic (DimDim-style): dominated by small audio and
// control packets, a band of video frames, and a thin tail of larger
// screen-share segments. Use with Conference and a high
// LatencySensitiveFrac.
func WebConference() *Empirical {
	return NewEmpirical("webconference", []CDFPoint{
		{Value: 64, Cum: 0},
		{Value: 160, Cum: 0.45},
		{Value: 320, Cum: 0.75},
		{Value: 800, Cum: 0.92},
		{Value: 1200, Cum: 1.0},
	})
}
