package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at draw %d", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("%d/100 identical draws across different seeds", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	c1 := parent.Split()
	c2 := parent.Split()
	if c1.Uint64() == c2.Uint64() {
		t.Error("split children produced identical first draw")
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
	}
}

func TestIntnRangeAndUniformity(t *testing.T) {
	r := New(5)
	const n = 10
	counts := make([]int, n)
	const draws = 100000
	for i := 0; i < draws; i++ {
		v := r.Intn(n)
		if v < 0 || v >= n {
			t.Fatalf("Intn out of range: %d", v)
		}
		counts[v]++
	}
	want := draws / n
	for i, c := range counts {
		if c < want*9/10 || c > want*11/10 {
			t.Errorf("bucket %d count %d far from expected %d", i, c, want)
		}
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	New(1).Intn(0)
}

func TestExpMean(t *testing.T) {
	r := New(11)
	const mean = 250.0
	sum := 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		sum += r.Exp(mean)
	}
	got := sum / n
	if math.Abs(got-mean)/mean > 0.02 {
		t.Errorf("Exp sample mean %.2f, want ~%.2f", got, mean)
	}
}

func TestParetoTail(t *testing.T) {
	r := New(13)
	const xm, alpha = 1.0, 1.5
	sum, n := 0.0, 200000
	minSeen := math.Inf(1)
	for i := 0; i < n; i++ {
		v := r.Pareto(xm, alpha)
		if v < xm {
			t.Fatalf("Pareto below scale: %v", v)
		}
		if v < minSeen {
			minSeen = v
		}
		sum += v
	}
	wantMean := alpha * xm / (alpha - 1)
	got := sum / float64(n)
	if math.Abs(got-wantMean)/wantMean > 0.1 {
		t.Errorf("Pareto sample mean %.3f, want ~%.3f", got, wantMean)
	}
}

func TestNormMoments(t *testing.T) {
	r := New(17)
	sum, sumSq := 0.0, 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		v := r.Norm()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("Norm mean %.4f, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Errorf("Norm variance %.4f, want ~1", variance)
	}
}

func TestPermIsPermutation(t *testing.T) {
	f := func(seed uint64) bool {
		r := New(seed)
		n := 1 + r.Intn(64)
		p := r.Perm(n)
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDerangementHasNoFixedPoints(t *testing.T) {
	f := func(seed uint64) bool {
		r := New(seed)
		n := 2 + r.Intn(63)
		p := r.Derangement(n)
		for i, v := range p {
			if v == i {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestZipfSkew(t *testing.T) {
	r := New(23)
	z := NewZipfSampler(100, 1.2)
	counts := make([]int, 100)
	for i := 0; i < 100000; i++ {
		counts[z.Sample(r)]++
	}
	if counts[0] <= counts[50] {
		t.Errorf("rank 0 (%d) should dominate rank 50 (%d)", counts[0], counts[50])
	}
	// s=0 should be uniform-ish.
	u := NewZipfSampler(10, 0)
	counts = make([]int, 10)
	for i := 0; i < 100000; i++ {
		counts[u.Sample(r)]++
	}
	for i, c := range counts {
		if c < 8000 || c > 12000 {
			t.Errorf("uniform zipf bucket %d = %d, want ~10000", i, c)
		}
	}
}

func TestEmpiricalCDF(t *testing.T) {
	// A 50/50 mice-and-elephants mix.
	cdf := NewEmpiricalCDF([]CDFPoint{
		{Value: 100, Cum: 0},
		{Value: 1000, Cum: 0.5},
		{Value: 1e6, Cum: 1.0},
	})
	r := New(29)
	mice, n := 0, 100000
	sum := 0.0
	for i := 0; i < n; i++ {
		v := cdf.Sample(r)
		if v < 100 || v > 1e6 {
			t.Fatalf("sample out of support: %v", v)
		}
		if v <= 1000 {
			mice++
		}
		sum += v
	}
	frac := float64(mice) / float64(n)
	if math.Abs(frac-0.5) > 0.02 {
		t.Errorf("mice fraction %.3f, want ~0.5", frac)
	}
	wantMean := cdf.Mean()
	got := sum / float64(n)
	if math.Abs(got-wantMean)/wantMean > 0.05 {
		t.Errorf("sample mean %.0f, analytic mean %.0f", got, wantMean)
	}
}

func TestEmpiricalCDFValidation(t *testing.T) {
	for _, pts := range [][]CDFPoint{
		{{Value: 1, Cum: 1}},                         // too few
		{{Value: 2, Cum: 0}, {Value: 1, Cum: 1}},     // unsorted values
		{{Value: 1, Cum: 0.5}, {Value: 2, Cum: 0.9}}, // does not end at 1
	} {
		func() {
			defer func() { recover() }()
			NewEmpiricalCDF(pts)
			t.Errorf("expected panic for %v", pts)
		}()
	}
}
