// Package rng provides a deterministic, seedable pseudo-random number
// generator and the distributions the traffic generators need.
//
// The simulator must be exactly reproducible: the same seed always yields
// the same event sequence, regardless of Go version or platform. We
// therefore implement xoshiro256** (seeded through splitmix64) rather than
// depending on math/rand's unspecified stream.
package rng

import (
	"math"
	"math/bits"
	"sort"
)

// Rand is a deterministic PRNG. The zero value is NOT usable; construct
// with New.
type Rand struct {
	s [4]uint64
}

// SplitMix64 advances *state by the splitmix64 increment and returns the
// next output of the sequence. It is the canonical seed-mixing function:
// nearby states yield uncorrelated outputs.
func SplitMix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New returns a generator seeded from seed via splitmix64, so that nearby
// seeds produce uncorrelated streams.
func New(seed uint64) *Rand {
	r := &Rand{}
	sm := seed
	for i := range r.s {
		r.s[i] = SplitMix64(&sm)
	}
	// All-zero state is invalid for xoshiro; splitmix64 cannot produce
	// four zeros from any seed, but guard anyway.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 1
	}
	return r
}

// Split derives an independent generator from r's stream. Use it to give
// each traffic source its own stream while keeping global determinism.
func (r *Rand) Split() *Rand { return New(r.Uint64()) }

// Uint64 returns the next 64 uniformly distributed bits.
func (r *Rand) Uint64() uint64 {
	s := &r.s
	result := bits.RotateLeft64(s[1]*5, 7) * 9
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = bits.RotateLeft64(s[3], 45)
	return result
}

// Float64 returns a uniform float64 in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	// Lemire's unbiased bounded generation.
	bound := uint64(n)
	hi, lo := bits.Mul64(r.Uint64(), bound)
	if lo < bound {
		threshold := -bound % bound
		for lo < threshold {
			hi, lo = bits.Mul64(r.Uint64(), bound)
		}
	}
	return int(hi)
}

// Int63n returns a uniform int64 in [0, n). It panics if n <= 0.
func (r *Rand) Int63n(n int64) int64 {
	if n <= 0 {
		panic("rng: Int63n with non-positive n")
	}
	bound := uint64(n)
	hi, lo := bits.Mul64(r.Uint64(), bound)
	if lo < bound {
		threshold := -bound % bound
		for lo < threshold {
			hi, lo = bits.Mul64(r.Uint64(), bound)
		}
	}
	return int64(hi)
}

// Bool returns true with probability p.
func (r *Rand) Bool(p float64) bool { return r.Float64() < p }

// Exp returns an exponentially distributed value with the given mean.
func (r *Rand) Exp(mean float64) float64 {
	u := r.Float64()
	// Avoid log(0).
	for u == 0 {
		u = r.Float64()
	}
	return -mean * math.Log(u)
}

// Pareto returns a Pareto-distributed value with scale xm > 0 and shape
// alpha > 0. Mean is alpha*xm/(alpha-1) for alpha > 1.
func (r *Rand) Pareto(xm, alpha float64) float64 {
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return xm / math.Pow(u, 1/alpha)
}

// LogNormal returns exp(N(mu, sigma^2)).
func (r *Rand) LogNormal(mu, sigma float64) float64 {
	return math.Exp(mu + sigma*r.Norm())
}

// Norm returns a standard normal variate (Box–Muller).
func (r *Rand) Norm() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return u * math.Sqrt(-2*math.Log(s)/s)
		}
	}
}

// Perm returns a random permutation of [0, n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Derangement returns a random permutation of [0, n) with no fixed points
// (p[i] != i for all i), suitable for src->dst traffic permutations where a
// host never sends to itself. It panics if n < 2.
func (r *Rand) Derangement(n int) []int {
	if n < 2 {
		panic("rng: Derangement needs n >= 2")
	}
	for {
		p := r.Perm(n)
		ok := true
		for i, v := range p {
			if v == i {
				ok = false
				break
			}
		}
		if ok {
			return p
		}
	}
}

// Zipf draws from a Zipf distribution over [0, n) with exponent s >= 0
// using inverse-CDF over precomputed weights. For repeated sampling build a
// ZipfSampler instead.
func (r *Rand) Zipf(n int, s float64) int {
	z := NewZipfSampler(n, s)
	return z.Sample(r)
}

// ZipfSampler samples ranks from a Zipf distribution with precomputed CDF.
type ZipfSampler struct {
	cdf []float64
}

// NewZipfSampler builds a sampler over ranks [0, n) with exponent s.
func NewZipfSampler(n int, s float64) *ZipfSampler {
	if n <= 0 {
		panic("rng: ZipfSampler needs n > 0")
	}
	cdf := make([]float64, n)
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += 1 / math.Pow(float64(i+1), s)
		cdf[i] = sum
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	return &ZipfSampler{cdf: cdf}
}

// Sample draws one rank.
func (z *ZipfSampler) Sample(r *Rand) int {
	u := r.Float64()
	return sort.SearchFloat64s(z.cdf, u)
}

// CDFPoint is one knot of an empirical CDF: P(X <= Value) = Cum.
type CDFPoint struct {
	Value float64
	Cum   float64
}

// EmpiricalCDF samples from a piecewise-linear empirical distribution, the
// standard way flow-size distributions from data-center measurement studies
// are specified.
type EmpiricalCDF struct {
	points []CDFPoint
}

// NewEmpiricalCDF builds a sampler from knots sorted by Value with Cum
// non-decreasing and ending at 1.0. It panics on malformed input since CDFs
// are static program data.
func NewEmpiricalCDF(points []CDFPoint) *EmpiricalCDF {
	if len(points) < 2 {
		panic("rng: EmpiricalCDF needs at least 2 points")
	}
	for i := 1; i < len(points); i++ {
		if points[i].Value < points[i-1].Value || points[i].Cum < points[i-1].Cum {
			panic("rng: EmpiricalCDF points must be sorted")
		}
	}
	if points[len(points)-1].Cum != 1.0 {
		panic("rng: EmpiricalCDF must end at Cum=1")
	}
	cp := make([]CDFPoint, len(points))
	copy(cp, points)
	return &EmpiricalCDF{points: cp}
}

// Points returns a copy of the CDF's knots, so callers (statistical
// tests, report tables) can enumerate the target distribution.
func (e *EmpiricalCDF) Points() []CDFPoint {
	out := make([]CDFPoint, len(e.points))
	copy(out, e.points)
	return out
}

// Sample draws one value by inverse transform with linear interpolation.
func (e *EmpiricalCDF) Sample(r *Rand) float64 {
	u := r.Float64()
	pts := e.points
	i := sort.Search(len(pts), func(i int) bool { return pts[i].Cum >= u })
	if i == 0 {
		return pts[0].Value
	}
	if i >= len(pts) {
		return pts[len(pts)-1].Value
	}
	lo, hi := pts[i-1], pts[i]
	if hi.Cum == lo.Cum {
		return hi.Value
	}
	frac := (u - lo.Cum) / (hi.Cum - lo.Cum)
	return lo.Value + frac*(hi.Value-lo.Value)
}

// Mean returns the analytic mean of the piecewise-linear distribution.
func (e *EmpiricalCDF) Mean() float64 {
	mean := 0.0
	pts := e.points
	prev := CDFPoint{Value: pts[0].Value, Cum: 0}
	for _, p := range pts {
		mass := p.Cum - prev.Cum
		mean += mass * (prev.Value + p.Value) / 2
		prev = p
	}
	return mean
}
