package voq

import (
	"testing"
	"testing/quick"

	"hybridsched/internal/packet"
	"hybridsched/internal/rng"
	"hybridsched/internal/units"
)

func mkpkt(id uint64, src, dst packet.Port, size units.Size) *packet.Packet {
	return &packet.Packet{ID: id, Src: src, Dst: dst, Size: size}
}

func TestQueueFIFO(t *testing.T) {
	q := NewQueue(0, 0)
	for i := uint64(0); i < 100; i++ {
		if !q.Enqueue(0, mkpkt(i, 0, 1, 64*units.Byte)) {
			t.Fatal("unlimited queue dropped")
		}
	}
	if q.Len() != 100 || q.Bits() != 100*64*units.Byte {
		t.Fatalf("len=%d bits=%v", q.Len(), q.Bits())
	}
	for i := uint64(0); i < 100; i++ {
		p := q.Dequeue(0)
		if p == nil || p.ID != i {
			t.Fatalf("FIFO order broken at %d: %v", i, p)
		}
	}
	if q.Dequeue(0) != nil {
		t.Fatal("empty dequeue should return nil")
	}
	if q.Enqueued() != 100 || q.Dequeued() != 100 || q.Drops() != 0 {
		t.Fatal("counters wrong")
	}
}

func TestQueueRingWraparound(t *testing.T) {
	// Interleave enqueues and dequeues to force head wraparound.
	q := NewQueue(0, 0)
	next := uint64(0)
	expect := uint64(0)
	for round := 0; round < 50; round++ {
		for i := 0; i < 3; i++ {
			q.Enqueue(0, mkpkt(next, 0, 1, 64*units.Byte))
			next++
		}
		for i := 0; i < 2; i++ {
			p := q.Dequeue(0)
			if p.ID != expect {
				t.Fatalf("wraparound order broken: got %d want %d", p.ID, expect)
			}
			expect++
		}
	}
	for q.Len() > 0 {
		p := q.Dequeue(0)
		if p.ID != expect {
			t.Fatalf("drain order broken: got %d want %d", p.ID, expect)
		}
		expect++
	}
	if expect != next {
		t.Fatalf("lost packets: drained %d of %d", expect, next)
	}
}

func TestQueueBitLimit(t *testing.T) {
	q := NewQueue(100*units.Byte, 0)
	if !q.Enqueue(0, mkpkt(0, 0, 1, 64*units.Byte)) {
		t.Fatal("first packet should fit")
	}
	if q.Enqueue(0, mkpkt(1, 0, 1, 64*units.Byte)) {
		t.Fatal("second packet should tail-drop")
	}
	if q.Drops() != 1 || q.DroppedBits() != 64*units.Byte {
		t.Fatalf("drop accounting wrong: %d, %v", q.Drops(), q.DroppedBits())
	}
	// Exactly filling the limit is allowed.
	q2 := NewQueue(128*units.Byte, 0)
	q2.Enqueue(0, mkpkt(0, 0, 1, 64*units.Byte))
	if !q2.Enqueue(0, mkpkt(1, 0, 1, 64*units.Byte)) {
		t.Fatal("exact fill should be accepted")
	}
}

func TestQueuePacketLimit(t *testing.T) {
	q := NewQueue(0, 2)
	q.Enqueue(0, mkpkt(0, 0, 1, 64*units.Byte))
	q.Enqueue(0, mkpkt(1, 0, 1, 64*units.Byte))
	if q.Enqueue(0, mkpkt(2, 0, 1, 64*units.Byte)) {
		t.Fatal("packet limit not enforced")
	}
}

func TestQueuePeakAndOccupancy(t *testing.T) {
	q := NewQueue(0, 0)
	q.Enqueue(0, mkpkt(0, 0, 1, 1000*units.Byte))
	q.Enqueue(units.Time(10), mkpkt(1, 0, 1, 1000*units.Byte))
	q.Dequeue(units.Time(20))
	q.Dequeue(units.Time(30))
	if q.PeakBits() != 2000*units.Byte {
		t.Fatalf("peak = %v", q.PeakBits())
	}
	if q.Bits() != 0 {
		t.Fatalf("bits = %v", q.Bits())
	}
	if q.MeanBitsOver(units.Time(30)) <= 0 {
		t.Fatal("mean occupancy should be positive")
	}
}

func TestDequeueUpTo(t *testing.T) {
	q := NewQueue(0, 0)
	for i := uint64(0); i < 5; i++ {
		q.Enqueue(0, mkpkt(i, 0, 1, 1000*units.Byte))
	}
	// Budget for 2.5 packets drains exactly 2.
	got := q.DequeueUpTo(0, 2500*units.Byte)
	if len(got) != 2 || got[0].ID != 0 || got[1].ID != 1 {
		t.Fatalf("got %v", got)
	}
	// Budget smaller than head drains nothing (no fragmentation).
	got = q.DequeueUpTo(0, 999*units.Byte)
	if len(got) != 0 {
		t.Fatalf("fragmented a packet: %v", got)
	}
	// Huge budget drains the rest.
	got = q.DequeueUpTo(0, units.Gigabyte)
	if len(got) != 3 {
		t.Fatalf("got %d, want 3", len(got))
	}
	if q.Len() != 0 {
		t.Fatal("queue should be empty")
	}
}

func TestBankRouting(t *testing.T) {
	b := NewBank(4, 0, nil)
	b.Enqueue(0, mkpkt(1, 2, 3, 64*units.Byte))
	b.Enqueue(0, mkpkt(2, 3, 1, 64*units.Byte))
	if b.Queue(2, 3).Len() != 1 || b.Queue(3, 1).Len() != 1 {
		t.Fatal("packets routed to wrong VOQ")
	}
	if b.Queue(0, 0).Len() != 0 {
		t.Fatal("unexpected packet")
	}
	p := b.Dequeue(0, 2, 3)
	if p == nil || p.ID != 1 {
		t.Fatalf("dequeue wrong: %v", p)
	}
	if b.Dequeue(0, 0, 0) != nil {
		t.Fatal("empty VOQ dequeue should be nil")
	}
}

func TestBankNotifications(t *testing.T) {
	type note struct {
		in, out packet.Port
		empty   bool
	}
	var notes []note
	b := NewBank(2, 0, func(in, out packet.Port, empty bool) {
		notes = append(notes, note{in, out, empty})
	})
	b.Enqueue(0, mkpkt(0, 0, 1, 64*units.Byte)) // empty -> nonempty: notify
	b.Enqueue(0, mkpkt(1, 0, 1, 64*units.Byte)) // still nonempty: no notify
	b.Dequeue(0, 0, 1)                          // still nonempty: no notify
	b.Dequeue(0, 0, 1)                          // nonempty -> empty: notify
	if len(notes) != 2 {
		t.Fatalf("notes = %v", notes)
	}
	if notes[0] != (note{0, 1, false}) || notes[1] != (note{0, 1, true}) {
		t.Fatalf("notes = %v", notes)
	}
}

func TestBankNotifyOnDrainViaDequeueUpTo(t *testing.T) {
	var empties int
	b := NewBank(2, 0, func(_, _ packet.Port, empty bool) {
		if empty {
			empties++
		}
	})
	b.Enqueue(0, mkpkt(0, 0, 1, 64*units.Byte))
	b.Enqueue(0, mkpkt(1, 0, 1, 64*units.Byte))
	b.DequeueUpTo(0, 0, 1, units.Gigabyte)
	if empties != 1 {
		t.Fatalf("empties = %d, want 1", empties)
	}
}

func TestBankAggregateAccounting(t *testing.T) {
	b := NewBank(3, 0, nil)
	b.Enqueue(0, mkpkt(0, 0, 1, 1000*units.Byte))
	b.Enqueue(0, mkpkt(1, 1, 2, 500*units.Byte))
	if b.TotalBits() != 1500*units.Byte {
		t.Fatalf("total = %v", b.TotalBits())
	}
	if b.PeakBits() != 1500*units.Byte {
		t.Fatalf("peak = %v", b.PeakBits())
	}
	b.Dequeue(0, 0, 1)
	if b.TotalBits() != 500*units.Byte {
		t.Fatalf("total after dequeue = %v", b.TotalBits())
	}
	if b.PeakBits() != 1500*units.Byte {
		t.Fatal("peak must not shrink")
	}
}

func TestBankDropAccounting(t *testing.T) {
	b := NewBank(2, 100*units.Byte, nil)
	b.Enqueue(0, mkpkt(0, 0, 1, 64*units.Byte))
	b.Enqueue(0, mkpkt(1, 0, 1, 64*units.Byte)) // dropped
	if b.Drops() != 1 {
		t.Fatalf("drops = %d", b.Drops())
	}
	if b.TotalBits() != 64*units.Byte {
		t.Fatal("dropped packet counted in total")
	}
}

func TestBankOccupancyMatrix(t *testing.T) {
	b := NewBank(2, 0, nil)
	b.Enqueue(0, mkpkt(0, 0, 1, 1000*units.Byte))
	b.Enqueue(0, mkpkt(1, 1, 0, 2000*units.Byte))
	m := b.OccupancyMatrix()
	if m.At(0, 1) != int64(1000*units.Byte) || m.At(1, 0) != int64(2000*units.Byte) {
		t.Fatalf("matrix wrong:\n%v", m)
	}
}

// TestBankNonEmptyTracking drives random enqueue/dequeue churn and checks
// the nonempty-queue index set — the O(nonempty) feed behind occupancy
// snapshots and residue sweeps at fabric port counts — against a dense
// rescan of the bank.
func TestBankNonEmptyTracking(t *testing.T) {
	const n = 5
	b := NewBank(n, 0, nil)
	queued := map[int32]int{}
	step := func(k int) {
		in, out := packet.Port(k*7%n), packet.Port(k*3%n)
		idx := int32(in)*n + int32(out)
		if k%3 == 2 {
			if p := b.Dequeue(units.Time(k), in, out); p != nil {
				queued[idx]--
			}
		} else {
			if b.Enqueue(units.Time(k), mkpkt(uint64(k), in, out, 100*units.Byte)) {
				queued[idx]++
			}
		}
	}
	for k := 0; k < 300; k++ {
		step(k)
		if k%37 != 0 {
			continue
		}
		got := map[int32]bool{}
		for _, idx := range b.AppendNonEmpty(nil) {
			if got[idx] {
				t.Fatalf("step %d: queue %d listed twice", k, idx)
			}
			got[idx] = true
		}
		for idx, cnt := range queued {
			if (cnt > 0) != got[idx] {
				t.Fatalf("step %d: queue %d count %d but listed=%v", k, idx, cnt, got[idx])
			}
		}
		occ := b.OccupancyMatrix()
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if want := int64(b.Queue(packet.Port(i), packet.Port(j)).Bits()); occ.At(i, j) != want {
					t.Fatalf("step %d: occupancy(%d,%d) = %d, want %d", k, i, j, occ.At(i, j), want)
				}
			}
		}
	}
}

func TestBankPortRangePanics(t *testing.T) {
	b := NewBank(2, 0, nil)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	b.Enqueue(0, mkpkt(0, 5, 1, 64*units.Byte))
}

// Property: for any random enqueue/dequeue interleaving, conservation holds:
// enqueued = dequeued + still-queued + dropped, per queue and in bits.
func TestQueueConservationProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		q := NewQueue(units.Size(r.Intn(100)+1)*100*units.Byte, 0)
		var enq, deq, dropped int64
		for i := 0; i < 500; i++ {
			if r.Bool(0.6) {
				p := mkpkt(uint64(i), 0, 1, units.Size(64+r.Intn(1400))*units.Byte)
				if q.Enqueue(0, p) {
					enq++
				} else {
					dropped++
				}
			} else if q.Dequeue(0) != nil {
				deq++
			}
		}
		return enq == deq+int64(q.Len()) &&
			q.Drops() == dropped &&
			q.Enqueued() == enq
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
