// Package voq implements Virtual Output Queues — the buffering element of
// the paper's processing logic. Each (input, output) pair has its own FIFO
// so head-of-line blocking cannot couple destinations; as a queue's status
// changes the bank emits notifications, which is how scheduling requests
// reach the scheduling logic in Figure 2.
package voq

import (
	"fmt"

	"hybridsched/internal/demand"
	"hybridsched/internal/packet"
	"hybridsched/internal/stats"
	"hybridsched/internal/units"
)

// Queue is a single FIFO with byte- and packet-count limits and tail-drop.
// The zero value is unusable; queues are created by NewBank (or NewQueue
// for standalone use, e.g. host queues).
type Queue struct {
	pkts     []*packet.Packet // ring buffer
	head     int
	count    int
	bits     units.Size
	maxBits  units.Size // 0 = unlimited
	maxPkts  int        // 0 = unlimited
	enq      stats.Counter
	deq      stats.Counter
	drops    stats.Counter
	dropBits stats.Counter
	occ      stats.TimeWeightedGauge
	peakBits units.Size
}

// NewQueue returns an empty queue with the given limits (0 = unlimited).
func NewQueue(maxBits units.Size, maxPkts int) *Queue {
	return &Queue{pkts: make([]*packet.Packet, 8), maxBits: maxBits, maxPkts: maxPkts}
}

// Len returns the number of queued packets.
func (q *Queue) Len() int { return q.count }

// Bits returns the queued volume in bits.
func (q *Queue) Bits() units.Size { return q.bits }

// PeakBits returns the high-water mark of queued volume.
func (q *Queue) PeakBits() units.Size { return q.peakBits }

// Drops returns the count of tail-dropped packets.
func (q *Queue) Drops() int64 { return q.drops.Value() }

// DroppedBits returns the volume of tail-dropped packets.
func (q *Queue) DroppedBits() units.Size { return units.Size(q.dropBits.Value()) }

// Enqueued returns the count of accepted packets.
func (q *Queue) Enqueued() int64 { return q.enq.Value() }

// Dequeued returns the count of dequeued packets.
func (q *Queue) Dequeued() int64 { return q.deq.Value() }

// MeanBitsOver returns the time-weighted mean occupancy in bits up to end.
func (q *Queue) MeanBitsOver(end units.Time) float64 {
	return q.occ.MeanOver(int64(end))
}

// Front returns the packet at the head without removing it, or nil.
func (q *Queue) Front() *packet.Packet {
	if q.count == 0 {
		return nil
	}
	return q.pkts[q.head]
}

// Enqueue appends p at time t. It returns false (and accounts a drop) if a
// limit would be exceeded.
func (q *Queue) Enqueue(t units.Time, p *packet.Packet) bool {
	if q.maxPkts > 0 && q.count >= q.maxPkts ||
		q.maxBits > 0 && q.bits+p.Size > q.maxBits {
		q.drops.Inc()
		q.dropBits.Add(int64(p.Size))
		return false
	}
	if q.count == len(q.pkts) {
		q.grow()
	}
	q.pkts[(q.head+q.count)%len(q.pkts)] = p
	q.count++
	q.bits += p.Size
	if q.bits > q.peakBits {
		q.peakBits = q.bits
	}
	p.EnqueuedAt = t
	q.enq.Inc()
	q.occ.Set(int64(t), int64(q.bits))
	return true
}

func (q *Queue) grow() {
	bigger := make([]*packet.Packet, 2*len(q.pkts))
	for i := 0; i < q.count; i++ {
		bigger[i] = q.pkts[(q.head+i)%len(q.pkts)]
	}
	q.pkts = bigger
	q.head = 0
}

// Dequeue removes and returns the head packet, or nil if empty.
func (q *Queue) Dequeue(t units.Time) *packet.Packet {
	if q.count == 0 {
		return nil
	}
	p := q.pkts[q.head]
	q.pkts[q.head] = nil
	q.head = (q.head + 1) % len(q.pkts)
	q.count--
	q.bits -= p.Size
	q.deq.Inc()
	q.occ.Set(int64(t), int64(q.bits))
	return p
}

// DequeueUpTo drains whole packets from the head while their cumulative
// size fits within budget, returning them in order. A head packet larger
// than the remaining budget stops the drain (packets are never fragmented).
func (q *Queue) DequeueUpTo(t units.Time, budget units.Size) []*packet.Packet {
	var out []*packet.Packet
	for q.count > 0 {
		p := q.pkts[q.head]
		if p.Size > budget {
			break
		}
		budget -= p.Size
		out = append(out, q.Dequeue(t))
	}
	return out
}

// Notify is called by a Bank when a VOQ transitions between empty and
// non-empty — the paper's "as the status of a VOQ changes, the subsystem
// generates scheduling requests".
type Notify func(in, out packet.Port, nowEmpty bool)

// Bank is the n x n VOQ array at the switch ingress. Alongside the
// queues it tracks the set of nonempty queue indices, so occupancy
// reporting and residue sweeps cost O(nonempty queues) instead of O(n²) —
// the difference between rack-size and fabric-size port counts.
type Bank struct {
	n      int
	queues []*Queue
	notify Notify
	total  units.Size
	peak   units.Size
	drops  stats.Counter

	active []int32        // indices (in*n + out) of nonempty queues, unordered
	apos   []int32        // position of each queue in active, -1 when empty
	occ    *demand.Matrix // reused occupancy scratch, built on demand
}

// NewBank returns an n x n bank whose queues each hold at most maxBits
// (0 = unlimited). notify may be nil.
func NewBank(n int, maxBits units.Size, notify Notify) *Bank {
	if n <= 0 {
		panic("voq: bank size must be positive")
	}
	b := &Bank{n: n, queues: make([]*Queue, n*n), notify: notify,
		apos: make([]int32, n*n)}
	for i := range b.queues {
		b.queues[i] = NewQueue(maxBits, 0)
		b.apos[i] = -1
	}
	return b
}

// activate records queue idx as nonempty.
func (b *Bank) activate(idx int32) {
	if b.apos[idx] >= 0 {
		return
	}
	b.apos[idx] = int32(len(b.active))
	b.active = append(b.active, idx)
}

// deactivate removes queue idx from the nonempty set (swap-remove).
func (b *Bank) deactivate(idx int32) {
	pos := b.apos[idx]
	if pos < 0 {
		return
	}
	last := int32(len(b.active) - 1)
	moved := b.active[last]
	b.active[pos] = moved
	b.apos[moved] = pos
	b.active = b.active[:last]
	b.apos[idx] = -1
}

// N returns the port count.
func (b *Bank) N() int { return b.n }

// Queue returns the VOQ for (in, out).
func (b *Bank) Queue(in, out packet.Port) *Queue {
	return b.queues[int(in)*b.n+int(out)]
}

func (b *Bank) check(in, out packet.Port) {
	if in < 0 || int(in) >= b.n || out < 0 || int(out) >= b.n {
		panic(fmt.Sprintf("voq: port out of range (%d,%d) for n=%d", in, out, b.n))
	}
}

// Enqueue places p into VOQ (p.Src, p.Dst). It returns false on tail-drop.
func (b *Bank) Enqueue(t units.Time, p *packet.Packet) bool {
	b.check(p.Src, p.Dst)
	idx := int32(p.Src)*int32(b.n) + int32(p.Dst)
	q := b.queues[idx]
	wasEmpty := q.Len() == 0
	if !q.Enqueue(t, p) {
		b.drops.Inc()
		return false
	}
	b.total += p.Size
	if b.total > b.peak {
		b.peak = b.total
	}
	if wasEmpty {
		b.activate(idx)
		if b.notify != nil {
			b.notify(p.Src, p.Dst, false)
		}
	}
	return true
}

// Dequeue removes the head packet of VOQ (in, out), or returns nil.
func (b *Bank) Dequeue(t units.Time, in, out packet.Port) *packet.Packet {
	b.check(in, out)
	idx := int32(in)*int32(b.n) + int32(out)
	q := b.queues[idx]
	p := q.Dequeue(t)
	if p != nil {
		b.total -= p.Size
		if q.Len() == 0 {
			b.deactivate(idx)
			if b.notify != nil {
				b.notify(in, out, true)
			}
		}
	}
	return p
}

// DequeueUpTo drains up to budget bits of whole packets from VOQ (in, out).
func (b *Bank) DequeueUpTo(t units.Time, in, out packet.Port, budget units.Size) []*packet.Packet {
	b.check(in, out)
	idx := int32(in)*int32(b.n) + int32(out)
	q := b.queues[idx]
	pkts := q.DequeueUpTo(t, budget)
	for _, p := range pkts {
		b.total -= p.Size
	}
	if len(pkts) > 0 && q.Len() == 0 {
		b.deactivate(idx)
		if b.notify != nil {
			b.notify(in, out, true)
		}
	}
	return pkts
}

// TotalBits returns the aggregate backlog across all VOQs.
func (b *Bank) TotalBits() units.Size { return b.total }

// PeakBits returns the aggregate backlog high-water mark — the Figure 1
// "buffering memory requirement" measurement.
func (b *Bank) PeakBits() units.Size { return b.peak }

// Drops returns the aggregate tail-drop count.
func (b *Bank) Drops() int64 { return b.drops.Value() }

// buildOcc refreshes the bank's reusable occupancy matrix from the
// nonempty-queue set: O(nonempty), no allocation in steady state.
func (b *Bank) buildOcc() *demand.Matrix {
	if b.occ == nil {
		b.occ = demand.NewMatrix(b.n)
	} else {
		b.occ.Reset()
	}
	for _, idx := range b.active {
		b.occ.Set(int(idx)/b.n, int(idx)%b.n, int64(b.queues[idx].bits))
	}
	return b.occ
}

// FillOccupancy writes the current per-VOQ backlog into est — the feed
// for occupancy-based demand estimation. Estimators implementing
// demand.OccupancySink receive the whole matrix at once (O(nonempty));
// others fall back to one SetOccupancy call per pair.
func (b *Bank) FillOccupancy(t units.Time, est demand.Estimator) {
	if sink, ok := est.(demand.OccupancySink); ok {
		sink.SetOccupancyMatrix(t, b.buildOcc())
		return
	}
	for i := 0; i < b.n; i++ {
		for j := 0; j < b.n; j++ {
			est.SetOccupancy(t, i, j, int64(b.queues[i*b.n+j].bits))
		}
	}
}

// OccupancyMatrix returns the instantaneous backlog as a demand matrix in
// bits. The matrix is a read-only view owned by the bank, valid until the
// next FillOccupancy or OccupancyMatrix call; callers that keep it must
// Clone it.
func (b *Bank) OccupancyMatrix() *demand.Matrix { return b.buildOcc() }

// AppendNonEmpty appends the flat indices (in*N + out) of all nonempty
// queues to dst and returns it. The order is unspecified; callers that
// need determinism sort the result. This is the O(nonempty) feed for
// residue sweeps over fabric-scale banks.
func (b *Bank) AppendNonEmpty(dst []int32) []int32 {
	return append(dst, b.active...)
}
