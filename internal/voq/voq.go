// Package voq implements Virtual Output Queues — the buffering element of
// the paper's processing logic. Each (input, output) pair has its own FIFO
// so head-of-line blocking cannot couple destinations; as a queue's status
// changes the bank emits notifications, which is how scheduling requests
// reach the scheduling logic in Figure 2.
package voq

import (
	"fmt"

	"hybridsched/internal/demand"
	"hybridsched/internal/packet"
	"hybridsched/internal/stats"
	"hybridsched/internal/units"
)

// Queue is a single FIFO with byte- and packet-count limits and tail-drop.
// The zero value is unusable; queues are created by NewBank (or NewQueue
// for standalone use, e.g. host queues).
type Queue struct {
	pkts     []*packet.Packet // ring buffer
	head     int
	count    int
	bits     units.Size
	maxBits  units.Size // 0 = unlimited
	maxPkts  int        // 0 = unlimited
	enq      stats.Counter
	deq      stats.Counter
	drops    stats.Counter
	dropBits stats.Counter
	occ      stats.TimeWeightedGauge
	peakBits units.Size
}

// NewQueue returns an empty queue with the given limits (0 = unlimited).
func NewQueue(maxBits units.Size, maxPkts int) *Queue {
	return &Queue{pkts: make([]*packet.Packet, 8), maxBits: maxBits, maxPkts: maxPkts}
}

// Len returns the number of queued packets.
func (q *Queue) Len() int { return q.count }

// Bits returns the queued volume in bits.
func (q *Queue) Bits() units.Size { return q.bits }

// PeakBits returns the high-water mark of queued volume.
func (q *Queue) PeakBits() units.Size { return q.peakBits }

// Drops returns the count of tail-dropped packets.
func (q *Queue) Drops() int64 { return q.drops.Value() }

// DroppedBits returns the volume of tail-dropped packets.
func (q *Queue) DroppedBits() units.Size { return units.Size(q.dropBits.Value()) }

// Enqueued returns the count of accepted packets.
func (q *Queue) Enqueued() int64 { return q.enq.Value() }

// Dequeued returns the count of dequeued packets.
func (q *Queue) Dequeued() int64 { return q.deq.Value() }

// MeanBitsOver returns the time-weighted mean occupancy in bits up to end.
func (q *Queue) MeanBitsOver(end units.Time) float64 {
	return q.occ.MeanOver(int64(end))
}

// Front returns the packet at the head without removing it, or nil.
func (q *Queue) Front() *packet.Packet {
	if q.count == 0 {
		return nil
	}
	return q.pkts[q.head]
}

// Enqueue appends p at time t. It returns false (and accounts a drop) if a
// limit would be exceeded.
func (q *Queue) Enqueue(t units.Time, p *packet.Packet) bool {
	if q.maxPkts > 0 && q.count >= q.maxPkts ||
		q.maxBits > 0 && q.bits+p.Size > q.maxBits {
		q.drops.Inc()
		q.dropBits.Add(int64(p.Size))
		return false
	}
	if q.count == len(q.pkts) {
		q.grow()
	}
	q.pkts[(q.head+q.count)%len(q.pkts)] = p
	q.count++
	q.bits += p.Size
	if q.bits > q.peakBits {
		q.peakBits = q.bits
	}
	p.EnqueuedAt = t
	q.enq.Inc()
	q.occ.Set(int64(t), int64(q.bits))
	return true
}

func (q *Queue) grow() {
	bigger := make([]*packet.Packet, 2*len(q.pkts))
	for i := 0; i < q.count; i++ {
		bigger[i] = q.pkts[(q.head+i)%len(q.pkts)]
	}
	q.pkts = bigger
	q.head = 0
}

// Dequeue removes and returns the head packet, or nil if empty.
func (q *Queue) Dequeue(t units.Time) *packet.Packet {
	if q.count == 0 {
		return nil
	}
	p := q.pkts[q.head]
	q.pkts[q.head] = nil
	q.head = (q.head + 1) % len(q.pkts)
	q.count--
	q.bits -= p.Size
	q.deq.Inc()
	q.occ.Set(int64(t), int64(q.bits))
	return p
}

// DequeueUpTo drains whole packets from the head while their cumulative
// size fits within budget, returning them in order. A head packet larger
// than the remaining budget stops the drain (packets are never fragmented).
func (q *Queue) DequeueUpTo(t units.Time, budget units.Size) []*packet.Packet {
	var out []*packet.Packet
	for q.count > 0 {
		p := q.pkts[q.head]
		if p.Size > budget {
			break
		}
		budget -= p.Size
		out = append(out, q.Dequeue(t))
	}
	return out
}

// Notify is called by a Bank when a VOQ transitions between empty and
// non-empty — the paper's "as the status of a VOQ changes, the subsystem
// generates scheduling requests".
type Notify func(in, out packet.Port, nowEmpty bool)

// Bank is the n x n VOQ array at the switch ingress.
type Bank struct {
	n      int
	queues []*Queue
	notify Notify
	total  units.Size
	peak   units.Size
	drops  stats.Counter
}

// NewBank returns an n x n bank whose queues each hold at most maxBits
// (0 = unlimited). notify may be nil.
func NewBank(n int, maxBits units.Size, notify Notify) *Bank {
	if n <= 0 {
		panic("voq: bank size must be positive")
	}
	b := &Bank{n: n, queues: make([]*Queue, n*n), notify: notify}
	for i := range b.queues {
		b.queues[i] = NewQueue(maxBits, 0)
	}
	return b
}

// N returns the port count.
func (b *Bank) N() int { return b.n }

// Queue returns the VOQ for (in, out).
func (b *Bank) Queue(in, out packet.Port) *Queue {
	return b.queues[int(in)*b.n+int(out)]
}

func (b *Bank) check(in, out packet.Port) {
	if in < 0 || int(in) >= b.n || out < 0 || int(out) >= b.n {
		panic(fmt.Sprintf("voq: port out of range (%d,%d) for n=%d", in, out, b.n))
	}
}

// Enqueue places p into VOQ (p.Src, p.Dst). It returns false on tail-drop.
func (b *Bank) Enqueue(t units.Time, p *packet.Packet) bool {
	b.check(p.Src, p.Dst)
	q := b.Queue(p.Src, p.Dst)
	wasEmpty := q.Len() == 0
	if !q.Enqueue(t, p) {
		b.drops.Inc()
		return false
	}
	b.total += p.Size
	if b.total > b.peak {
		b.peak = b.total
	}
	if wasEmpty && b.notify != nil {
		b.notify(p.Src, p.Dst, false)
	}
	return true
}

// Dequeue removes the head packet of VOQ (in, out), or returns nil.
func (b *Bank) Dequeue(t units.Time, in, out packet.Port) *packet.Packet {
	b.check(in, out)
	q := b.Queue(in, out)
	p := q.Dequeue(t)
	if p != nil {
		b.total -= p.Size
		if q.Len() == 0 && b.notify != nil {
			b.notify(in, out, true)
		}
	}
	return p
}

// DequeueUpTo drains up to budget bits of whole packets from VOQ (in, out).
func (b *Bank) DequeueUpTo(t units.Time, in, out packet.Port, budget units.Size) []*packet.Packet {
	b.check(in, out)
	q := b.Queue(in, out)
	pkts := q.DequeueUpTo(t, budget)
	for _, p := range pkts {
		b.total -= p.Size
	}
	if len(pkts) > 0 && q.Len() == 0 && b.notify != nil {
		b.notify(in, out, true)
	}
	return pkts
}

// TotalBits returns the aggregate backlog across all VOQs.
func (b *Bank) TotalBits() units.Size { return b.total }

// PeakBits returns the aggregate backlog high-water mark — the Figure 1
// "buffering memory requirement" measurement.
func (b *Bank) PeakBits() units.Size { return b.peak }

// Drops returns the aggregate tail-drop count.
func (b *Bank) Drops() int64 { return b.drops.Value() }

// FillOccupancy writes the current per-VOQ backlog into est via
// SetOccupancy, the feed for occupancy-based demand estimation.
func (b *Bank) FillOccupancy(t units.Time, est demand.Estimator) {
	for i := 0; i < b.n; i++ {
		for j := 0; j < b.n; j++ {
			est.SetOccupancy(t, i, j, int64(b.queues[i*b.n+j].bits))
		}
	}
}

// OccupancyMatrix returns the instantaneous backlog as a demand matrix in
// bits.
func (b *Bank) OccupancyMatrix() *demand.Matrix {
	m := demand.NewMatrix(b.n)
	for i := 0; i < b.n; i++ {
		for j := 0; j < b.n; j++ {
			m.Set(i, j, int64(b.queues[i*b.n+j].bits))
		}
	}
	return m
}
