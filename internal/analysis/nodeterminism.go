package analysis

// nodeterminism enforces the byte-identical-runs contract: the packages
// that produce experiment results may not read wall-clock time, draw
// from math/rand's unspecified streams, or iterate maps in unordered
// fashion. The reproducibility guarantees the golden HSTR digests and
// the any-worker-count determinism tests pin all flow from this.

import (
	"go/ast"
	"go/types"
)

// DeterministicPackages lists the result-producing package roots the
// nodeterminism contract covers: everything whose outputs feed metrics,
// traces, or experiment tables. A package matches if its import path is
// a listed root or below it.
var DeterministicPackages = []string{
	"hybridsched/internal/sim",
	"hybridsched/internal/match",
	"hybridsched/internal/demand",
	"hybridsched/internal/fabric",
	"hybridsched/internal/sched",
	"hybridsched/internal/runner",
	"hybridsched/internal/serve",
	"hybridsched/internal/metrics",
	"hybridsched/internal/traffic",
	"hybridsched/internal/scenario",
	"hybridsched/internal/voq",
	"hybridsched/internal/eps",
	"hybridsched/internal/ocs",
	"hybridsched/internal/cluster",
	"hybridsched/internal/host",
	"hybridsched/internal/packet",
	"hybridsched/internal/classify",
	"hybridsched/internal/buffermodel",
	"hybridsched/internal/stats",
	"hybridsched/internal/rng",
	"hybridsched/experiments",
}

// wallClockFuncs are the time-package entry points that observe or
// depend on the wall clock. Pure arithmetic on time.Duration values is
// fine; these are not.
var wallClockFuncs = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"Sleep":     true,
	"After":     true,
	"AfterFunc": true,
	"Tick":      true,
	"NewTicker": true,
	"NewTimer":  true,
}

// NoDeterminism is the determinism-contract analyzer.
var NoDeterminism = &Analyzer{
	Name: "nodeterminism",
	Doc: `forbid wall-clock reads, math/rand, and unordered map iteration in result-producing packages

Results must be byte-identical across runs, hosts, Go versions and
worker counts. Wall-clock calls (time.Now, Sleep, tickers, ...) need a
//hybridsched:wallclock directive on the use or the enclosing function;
map iteration needs //hybridsched:mapiter after review that the fold is
order-insensitive; math/rand is banned outright — seed
hybridsched/internal/rng instead, whose stream is pinned.`,
	Run: runNoDeterminism,
}

func runNoDeterminism(pass *Pass) error {
	if !matchesAny(pass.Pkg.PkgPath, DeterministicPackages) {
		return nil
	}
	idx := newDirectiveIndex(pass.Pkg)
	info := pass.Pkg.Info

	// excused reports whether the use at pos is covered by a line- or
	// function-attached directive.
	excused := func(file *ast.File, pos ast.Node, dir string) bool {
		if idx.at(pos.Pos(), dir) {
			return true
		}
		if fn := enclosingFunc(file, pos.Pos()); fn != nil && funcHasDirective(fn, dir) {
			return true
		}
		return false
	}

	for _, file := range pass.Pkg.Files {
		for _, imp := range file.Imports {
			switch path := importPath(imp); path {
			case "math/rand", "math/rand/v2":
				pass.Reportf(imp.Pos(),
					"import of %s: its stream is unspecified across Go versions; use hybridsched/internal/rng",
					path)
			}
		}
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SelectorExpr:
				obj := info.Uses[n.Sel]
				fn, ok := obj.(*types.Func)
				if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "time" {
					return true
				}
				if !wallClockFuncs[fn.Name()] {
					return true
				}
				if excused(file, n, dirWallClock) {
					return true
				}
				pass.Reportf(n.Pos(),
					"time.%s reads the wall clock in a result-producing package; route through the simulated clock or annotate //hybridsched:wallclock",
					fn.Name())
			case *ast.RangeStmt:
				if _, ok := info.TypeOf(n.X).Underlying().(*types.Map); !ok {
					return true
				}
				if excused(file, n, dirMapIter) {
					return true
				}
				pass.Reportf(n.Pos(),
					"map iteration order is randomized; iterate a sorted key slice or annotate //hybridsched:mapiter after review")
			}
			return true
		})
	}
	return nil
}

func importPath(imp *ast.ImportSpec) string {
	p := imp.Path.Value
	return p[1 : len(p)-1]
}
