package analysis

// The loader stands in for golang.org/x/tools/go/packages: it resolves
// package metadata and dependency export data through `go list` (the
// only authority on build constraints and the build cache), then
// type-checks the packages under analysis from source so every analyzer
// sees real syntax trees with full type information. Packages loaded
// together share one FileSet and one importer, so type-checked objects
// are identical across packages — the property hotpathalloc's
// cross-package call chasing depends on.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Package is one loaded, type-checked package.
type Package struct {
	PkgPath string
	Dir     string
	Fset    *token.FileSet
	Files   []*ast.File
	Types   *types.Package
	Info    *types.Info
}

// listedPackage is the subset of `go list -json` output the loader
// consumes.
type listedPackage struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	Imports    []string
	Standard   bool
	Module     *struct {
		Path string
		Main bool
	}
	Error *struct {
		Err string
	}
}

// LoadModule loads and type-checks the module packages matching the
// patterns (relative to root, e.g. "./..."), in dependency order.
// Dependencies outside the module are imported from compiler export
// data; the matched packages themselves are parsed and checked from
// source.
func LoadModule(root string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{"list", "-e", "-deps", "-export", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = root
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list: %v\n%s", err, stderr.String())
	}

	byPath := map[string]*listedPackage{}
	var inModule []*listedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list output: %w", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("go list %s: %s", p.ImportPath, p.Error.Err)
		}
		lp := p
		byPath[p.ImportPath] = &lp
		if p.Module != nil && p.Module.Main {
			inModule = append(inModule, &lp)
		}
	}
	if len(inModule) == 0 {
		return nil, fmt.Errorf("no module packages matched %v under %s", patterns, root)
	}

	// Dependency order: a package type-checks only after its in-module
	// imports have.
	ordered, err := topoSort(inModule, byPath)
	if err != nil {
		return nil, err
	}

	fset := token.NewFileSet()
	ld := &moduleImporter{
		fset:    fset,
		exports: byPath,
		checked: map[string]*types.Package{},
	}
	var pkgs []*Package
	for _, lp := range ordered {
		pkg, err := checkFromSource(fset, lp.ImportPath, lp.Dir, lp.GoFiles, ld)
		if err != nil {
			return nil, err
		}
		ld.checked[lp.ImportPath] = pkg.Types
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// topoSort orders the module packages so imports precede importers.
func topoSort(pkgs []*listedPackage, byPath map[string]*listedPackage) ([]*listedPackage, error) {
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].ImportPath < pkgs[j].ImportPath })
	inSet := map[string]*listedPackage{}
	for _, p := range pkgs {
		inSet[p.ImportPath] = p
	}
	const (
		white = 0
		gray  = 1
		black = 2
	)
	state := map[string]int{}
	var ordered []*listedPackage
	var visit func(p *listedPackage) error
	visit = func(p *listedPackage) error {
		switch state[p.ImportPath] {
		case black:
			return nil
		case gray:
			return fmt.Errorf("import cycle through %s", p.ImportPath)
		}
		state[p.ImportPath] = gray
		for _, imp := range p.Imports {
			if dep, ok := inSet[imp]; ok {
				if err := visit(dep); err != nil {
					return err
				}
			}
		}
		state[p.ImportPath] = black
		ordered = append(ordered, p)
		return nil
	}
	for _, p := range pkgs {
		if err := visit(p); err != nil {
			return nil, err
		}
	}
	return ordered, nil
}

// checkFromSource parses and type-checks one package.
func checkFromSource(fset *token.FileSet, pkgPath, dir string, goFiles []string, imp types.Importer) (*Package, error) {
	var files []*ast.File
	for _, name := range goFiles {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Instances:  map[*ast.Ident]types.Instance{},
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(pkgPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck %s: %w", pkgPath, err)
	}
	return &Package{
		PkgPath: pkgPath,
		Dir:     dir,
		Fset:    fset,
		Files:   files,
		Types:   tpkg,
		Info:    info,
	}, nil
}

// moduleImporter resolves imports during a LoadModule run: in-module
// packages from the source-checked results, everything else from the
// compiler export data `go list -export` reported.
type moduleImporter struct {
	fset    *token.FileSet
	exports map[string]*listedPackage
	checked map[string]*types.Package

	gcOnce sync.Once
	gc     types.Importer
}

func (m *moduleImporter) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if pkg, ok := m.checked[path]; ok {
		return pkg, nil
	}
	m.gcOnce.Do(func() {
		m.gc = importer.ForCompiler(m.fset, "gc", func(path string) (io.ReadCloser, error) {
			lp, ok := m.exports[path]
			if !ok || lp.Export == "" {
				return nil, fmt.Errorf("no export data for %q", path)
			}
			return os.Open(lp.Export)
		})
	})
	return m.gc.Import(path)
}

// ---------------------------------------------------------------------------
// Fixture loading (the analysistest substitute).

// fixtureLoader resolves imports for test fixtures under a GOPATH-style
// srcRoot (testdata/src): packages present under srcRoot are checked
// from source, anything else is assumed to be standard library and
// imported from export data located via `go list -export`.
type fixtureLoader struct {
	srcRoot string
	fset    *token.FileSet
	checked map[string]*types.Package

	stdMu      sync.Mutex
	stdExports map[string]string
	gc         types.Importer
}

// LoadFixture loads the fixture package at srcRoot/importPath,
// type-checking it and any fixture packages it imports from source.
func LoadFixture(srcRoot, importPath string) (*Package, error) {
	ld := &fixtureLoader{
		srcRoot:    srcRoot,
		fset:       token.NewFileSet(),
		checked:    map[string]*types.Package{},
		stdExports: map[string]string{},
	}
	ld.gc = importer.ForCompiler(ld.fset, "gc", ld.openStdExport)
	return ld.load(importPath)
}

func (ld *fixtureLoader) load(importPath string) (*Package, error) {
	dir := filepath.Join(ld.srcRoot, filepath.FromSlash(importPath))
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var goFiles []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		goFiles = append(goFiles, name)
	}
	if len(goFiles) == 0 {
		return nil, fmt.Errorf("no Go files in fixture %s", dir)
	}
	sort.Strings(goFiles)
	pkg, err := checkFromSource(ld.fset, importPath, dir, goFiles, ld)
	if err != nil {
		return nil, err
	}
	ld.checked[importPath] = pkg.Types
	return pkg, nil
}

func (ld *fixtureLoader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if pkg, ok := ld.checked[path]; ok {
		return pkg, nil
	}
	if _, err := os.Stat(filepath.Join(ld.srcRoot, filepath.FromSlash(path))); err == nil {
		pkg, err := ld.load(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return ld.gc.Import(path)
}

// openStdExport locates a standard-library package's export data via the
// go command (which builds it into the cache if needed).
func (ld *fixtureLoader) openStdExport(path string) (io.ReadCloser, error) {
	ld.stdMu.Lock()
	file, ok := ld.stdExports[path]
	ld.stdMu.Unlock()
	if !ok {
		cmd := exec.Command("go", "list", "-export", "-f", "{{.Export}}", path)
		var stderr bytes.Buffer
		cmd.Stderr = &stderr
		out, err := cmd.Output()
		if err != nil {
			return nil, fmt.Errorf("go list -export %s: %v\n%s", path, err, stderr.String())
		}
		file = strings.TrimSpace(string(out))
		if file == "" {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		ld.stdMu.Lock()
		ld.stdExports[path] = file
		ld.stdMu.Unlock()
	}
	return os.Open(file)
}
