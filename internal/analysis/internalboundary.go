package analysis

// internalboundary is the public-API import contract as an analyzer:
// nothing under cmd/ or examples/ may import hybridsched/internal/... —
// the root package and the public subpackages are the whole surface
// downstream programs get. The contract itself lives in boundary.json
// (machine-readable, one source of truth), so the lint run, the
// publicapi test wrapper, and any future tooling can never disagree
// about what is sealed.

import (
	_ "embed"
	"encoding/json"
	"fmt"
)

//go:embed boundary.json
var boundaryJSON []byte

// BoundaryConfig is the import contract: packages under any
// DeniedImporters root must not import any Sealed root, except the
// reviewed (importer, allowed) pairs in Exceptions.
type BoundaryConfig struct {
	Sealed          []string            `json:"sealed"`
	DeniedImporters []string            `json:"deniedImporters"`
	Exceptions      []BoundaryException `json:"exceptions"`
}

// BoundaryException permits one denied importer to reach specific
// sealed package roots, with a recorded reason.
type BoundaryException struct {
	Importer string   `json:"importer"`
	Allowed  []string `json:"allowed"`
	Reason   string   `json:"reason"`
}

// permits reports whether the contract carves out importer -> path.
func (c BoundaryConfig) permits(importer, path string) bool {
	for _, e := range c.Exceptions {
		if importer == e.Importer && matchesAny(path, e.Allowed) {
			return true
		}
	}
	return false
}

// DefaultBoundary returns the embedded boundary.json contract.
func DefaultBoundary() (BoundaryConfig, error) {
	var cfg BoundaryConfig
	if err := json.Unmarshal(boundaryJSON, &cfg); err != nil {
		return cfg, fmt.Errorf("internalboundary: bad embedded boundary.json: %w", err)
	}
	if len(cfg.Sealed) == 0 || len(cfg.DeniedImporters) == 0 {
		return cfg, fmt.Errorf("internalboundary: boundary.json must list sealed and deniedImporters roots")
	}
	return cfg, nil
}

// InternalBoundary is the API-boundary analyzer.
var InternalBoundary = &Analyzer{
	Name: "internalboundary",
	Doc: `seal the internal/ packages against cmd/ and examples/

The root hybridsched package re-exports the complete public surface;
commands and examples must exercise exactly what a downstream module
could. The sealed and denied package roots are read from the embedded
boundary.json.`,
	Run: runInternalBoundary,
}

func runInternalBoundary(pass *Pass) error {
	cfg, err := DefaultBoundary()
	if err != nil {
		return err
	}
	if !matchesAny(pass.Pkg.PkgPath, cfg.DeniedImporters) {
		return nil
	}
	for _, file := range pass.Pkg.Files {
		for _, imp := range file.Imports {
			path := importPath(imp)
			if matchesAny(path, cfg.Sealed) && !cfg.permits(pass.Pkg.PkgPath, path) {
				pass.Reportf(imp.Pos(),
					"%s imports sealed package %s; commands and examples must use only the public surface",
					pass.Pkg.PkgPath, path)
			}
		}
	}
	return nil
}
