package analysis

// chandiscipline enforces the internal/serve backpressure rule: the
// online service must never let a slow consumer stall the epoch loop or
// let an unbounded buffer hide one. Concretely, in the configured
// packages every data-carrying channel must be created with an explicit
// bound, and every send must sit in a select with a default case — the
// shape that forces the author to pick a drop policy (DropOldest /
// DropNewest) instead of inheriting "block forever".
//
// Pure signal channels (element type struct{}) are exempt: they are
// closed, not sent on, and bounding them adds nothing. A reviewed
// exception carries //hybridsched:unbounded-ok on the line.

import (
	"go/ast"
	"go/types"
)

// BackpressurePackages lists the package roots the channel discipline
// covers.
var BackpressurePackages = []string{
	"hybridsched/internal/serve",
}

// ChanDiscipline is the bounded-channel / drop-policy analyzer.
var ChanDiscipline = &Analyzer{
	Name: "chandiscipline",
	Doc: `require bounded channels and select-with-default sends in the serve layer

A subscriber or ingest channel without a capacity, or a bare blocking
send, couples the epoch loop to its slowest consumer. Buffer depth plus
an explicit drop policy is the contract; //hybridsched:unbounded-ok
records a reviewed exception.`,
	Run: runChanDiscipline,
}

func runChanDiscipline(pass *Pass) error {
	if !matchesAny(pass.Pkg.PkgPath, BackpressurePackages) {
		return nil
	}
	idx := newDirectiveIndex(pass.Pkg)
	info := pass.Pkg.Info

	// Sends appearing as a select communication are judged with their
	// select; collect them first.
	selectSends := map[*ast.SendStmt]*ast.SelectStmt{}
	for _, file := range pass.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectStmt)
			if !ok {
				return true
			}
			for _, clause := range sel.Body.List {
				cc := clause.(*ast.CommClause)
				if send, ok := cc.Comm.(*ast.SendStmt); ok {
					selectSends[send] = sel
				}
			}
			return true
		})
	}

	for _, file := range pass.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				if !isBuiltin(info, n, "make") || len(n.Args) == 0 {
					return true
				}
				ch, ok := info.TypeOf(n.Args[0]).Underlying().(*types.Chan)
				if !ok {
					return true
				}
				if len(n.Args) >= 2 {
					return true // bounded
				}
				if isEmptyStruct(ch.Elem()) {
					return true // close-only signal channel
				}
				if idx.at(n.Pos(), dirUnboundedOK) {
					return true
				}
				pass.Reportf(n.Pos(),
					"unbuffered %s channel in the serve layer: give it a bound and a drop policy, or annotate //hybridsched:unbounded-ok",
					types.TypeString(ch.Elem(), nil))
			case *ast.SendStmt:
				if idx.at(n.Pos(), dirUnboundedOK) {
					return true
				}
				if sel, ok := selectSends[n]; ok {
					if selectHasDefault(sel) {
						return true
					}
					pass.Reportf(n.Pos(),
						"select send without a default case blocks on a slow consumer; add a default implementing the drop policy")
					return true
				}
				pass.Reportf(n.Pos(),
					"bare channel send blocks on a slow consumer; send inside a select with a default implementing the drop policy")
			}
			return true
		})
	}
	return nil
}

func selectHasDefault(sel *ast.SelectStmt) bool {
	for _, clause := range sel.Body.List {
		if clause.(*ast.CommClause).Comm == nil {
			return true
		}
	}
	return false
}

func isEmptyStruct(t types.Type) bool {
	s, ok := t.Underlying().(*types.Struct)
	return ok && s.NumFields() == 0
}
