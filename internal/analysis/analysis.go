// Package analysis is schedlint: a suite of static analyzers that turn
// the module's three load-bearing invariants — deterministic results,
// allocation-free scheduling hot paths, and the sealed internal/ API
// boundary — into compile-time contracts checked on every build instead
// of runtime properties sampled by whichever tests happen to execute
// them. See docs/INVARIANTS.md for the contracts and the
// //hybridsched:* directive vocabulary.
//
// The package mirrors the golang.org/x/tools/go/analysis vocabulary
// (Analyzer, Pass, Diagnostic, testdata/src fixtures with want
// comments) so the analyzers can migrate to the upstream framework —
// and run under go vet -vettool — verbatim once the x/tools dependency
// is available; this tree deliberately builds from the standard library
// alone, so the driver in cmd/schedlint and the loader in load.go stand
// in for multichecker and go/packages.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// An Analyzer describes one invariant checker. The driver runs Run once
// per loaded package; module-scoped analyzers (hotpathalloc) reach the
// other packages of the load through Pass.Module but still report only
// against the current package, so diagnostics are never duplicated.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and on the command
	// line. Lowercase, no spaces.
	Name string
	// Doc is the one-paragraph contract description shown by
	// schedlint -help.
	Doc string
	// Run reports the package's violations through pass.Reportf.
	Run func(pass *Pass) error
}

// A Pass is one analyzer's view of one package during a run.
type Pass struct {
	Analyzer *Analyzer
	// Pkg is the package under analysis.
	Pkg *Package
	// Module holds every package of the load in dependency order
	// (Pkg included). Type-checked objects are shared across the slice,
	// so a *types.Func resolved in one package is identical to the
	// defining package's, which is what lets hotpathalloc chase static
	// calls across package boundaries.
	Module []*Package

	report func(Diagnostic)
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Pkg.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// A Diagnostic is one reported violation.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// Analyzers returns the schedlint suite in reporting order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		NoDeterminism,
		HotPathAlloc,
		PoolPair,
		InternalBoundary,
		ChanDiscipline,
	}
}

// Run executes the analyzers over every package of a load and returns
// the diagnostics sorted by file position.
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, a := range analyzers {
		for _, pkg := range pkgs {
			pass := &Pass{
				Analyzer: a,
				Pkg:      pkg,
				Module:   pkgs,
				report:   func(d Diagnostic) { diags = append(diags, d) },
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s on %s: %w", a.Name, pkg.PkgPath, err)
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags, nil
}

// ---------------------------------------------------------------------------
// Directives.
//
// The //hybridsched:* comment vocabulary is how reviewed exceptions to
// the contracts are recorded in the code they apply to:
//
//	//hybridsched:hotpath      — zero-allocation contract root (func)
//	//hybridsched:alloc-ok …   — reviewed allocation; hotpathalloc stops here (func)
//	//hybridsched:wallclock    — intentional wall-clock use (func or line)
//	//hybridsched:mapiter      — order-insensitive map iteration (func or line)
//	//hybridsched:unbounded-ok — reviewed unbounded channel (line)
//
// A line directive attaches to the flagged statement's own line or the
// line immediately above it; a func directive lives in the function's
// doc comment.

// DirectivePrefix starts every schedlint comment directive.
const DirectivePrefix = "//hybridsched:"

const (
	dirHotPath     = "hotpath"
	dirAllocOK     = "alloc-ok"
	dirWallClock   = "wallclock"
	dirMapIter     = "mapiter"
	dirUnboundedOK = "unbounded-ok"
)

// directiveName extracts the directive name from one comment, or "".
func directiveName(c *ast.Comment) string {
	if !strings.HasPrefix(c.Text, DirectivePrefix) {
		return ""
	}
	rest := strings.TrimPrefix(c.Text, DirectivePrefix)
	if i := strings.IndexAny(rest, " \t"); i >= 0 {
		rest = rest[:i] // trailing words are the human-readable reason
	}
	return rest
}

// directiveIndex maps file/line positions to the directives present
// there, for line-attached lookups.
type directiveIndex struct {
	fset   *token.FileSet
	byLine map[string]map[int][]string // filename -> line -> directive names
}

// newDirectiveIndex scans every comment in the package.
func newDirectiveIndex(pkg *Package) *directiveIndex {
	idx := &directiveIndex{fset: pkg.Fset, byLine: map[string]map[int][]string{}}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				name := directiveName(c)
				if name == "" {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				lines := idx.byLine[pos.Filename]
				if lines == nil {
					lines = map[int][]string{}
					idx.byLine[pos.Filename] = lines
				}
				lines[pos.Line] = append(lines[pos.Line], name)
			}
		}
	}
	return idx
}

// at reports whether directive name is attached to pos: present on the
// same line or the line immediately above.
func (idx *directiveIndex) at(pos token.Pos, name string) bool {
	p := idx.fset.Position(pos)
	lines := idx.byLine[p.Filename]
	if lines == nil {
		return false
	}
	for _, l := range []int{p.Line, p.Line - 1} {
		for _, n := range lines[l] {
			if n == name {
				return true
			}
		}
	}
	return false
}

// funcHasDirective reports whether fn's doc comment carries the
// directive.
func funcHasDirective(fn *ast.FuncDecl, name string) bool {
	if fn.Doc == nil {
		return false
	}
	for _, c := range fn.Doc.List {
		if directiveName(c) == name {
			return true
		}
	}
	return false
}

// enclosingFunc returns the function declaration containing pos in file,
// or nil.
func enclosingFunc(file *ast.File, pos token.Pos) *ast.FuncDecl {
	for _, decl := range file.Decls {
		if fn, ok := decl.(*ast.FuncDecl); ok && fn.Pos() <= pos && pos <= fn.End() {
			return fn
		}
	}
	return nil
}

// pkgPathMatches reports whether pkgPath is path itself or below it.
func pkgPathMatches(pkgPath, path string) bool {
	return pkgPath == path || strings.HasPrefix(pkgPath, path+"/")
}

// matchesAny reports whether pkgPath matches any of the given package
// path roots.
func matchesAny(pkgPath string, roots []string) bool {
	for _, r := range roots {
		if pkgPathMatches(pkgPath, r) {
			return true
		}
	}
	return false
}
