package analysis

// hotpathalloc enforces the zero-allocation contract on the scheduling
// hot path. Functions annotated //hybridsched:hotpath — the per-slot
// arbiters, the demand matrix's incremental updates, the serve epoch —
// and every function they statically call within the module are flagged
// on constructs that allocate: make/new, heap-bound composite literals,
// append that grows anything but the target's own scratch, interface
// boxing, capturing closures and method values, string/byte
// conversions, goroutine launches, and calls into known-allocating
// standard-library entry points. A single stray allocation per slot at
// n=2048–4096 erases the sparse-kernel wins, so the contract is checked
// at lint time, not discovered in a benchmark three PRs later.
//
// Reviewed exceptions carry //hybridsched:alloc-ok with a reason: on a
// function it stops the call traversal there (serve's publish clones
// one matching per epoch for subscribers, by design); on a line it
// excuses that construct alone.

import (
	"bytes"
	"go/ast"
	"go/printer"
	"go/token"
	"go/types"
)

// allocatingStdlib lists standard-library calls that always allocate.
// Calls into packages outside the module are otherwise trusted (the
// traversal cannot see their bodies), so the usual suspects are named.
var allocatingStdlib = map[string]map[string]bool{
	"fmt":     nil, // every fmt entry point allocates (nil = all)
	"errors":  {"New": true, "Join": true},
	"strconv": {"Itoa": true, "FormatInt": true, "FormatFloat": true, "FormatUint": true, "Quote": true},
	"strings": {"Join": true, "Repeat": true, "Replace": true, "ReplaceAll": true, "Split": true, "Fields": true, "ToUpper": true, "ToLower": true},
	"bytes":   {"Join": true, "Repeat": true, "Split": true},
	"sort":    {"Strings": true, "Ints": true}, // interface-based sort boxes
}

// HotPathAlloc is the zero-allocation-contract analyzer.
var HotPathAlloc = &Analyzer{
	Name: "hotpathalloc",
	Doc: `forbid allocating constructs in //hybridsched:hotpath functions and their static callees

The per-slot scheduling path must run at 0 allocs/op in steady state
(BenchmarkMatch, BenchmarkServeEpoch pin the numbers; this analyzer
pins the code shape). Scratch growth of the form x = append(x, ...) is
amortized-free and allowed; everything else that can touch the heap is
reported. Stop traversal at a reviewed boundary with
//hybridsched:alloc-ok <reason>.`,
	Run: runHotPathAlloc,
}

// hotFunc is one function in the hot-path closure.
type hotFunc struct {
	decl *ast.FuncDecl
	pkg  *Package
	root string // display name of the annotated root that reaches it
}

func runHotPathAlloc(pass *Pass) error {
	closure := hotClosure(pass.Module)
	idx := newDirectiveIndex(pass.Pkg)
	for _, hf := range closure {
		if hf.pkg == pass.Pkg {
			checkHotBody(pass, idx, hf)
		}
	}
	return nil
}

// hotClosure finds every //hybridsched:hotpath function in the load and
// expands the set through static calls to module functions, stopping at
// //hybridsched:alloc-ok boundaries.
func hotClosure(module []*Package) []*hotFunc {
	type declInfo struct {
		decl *ast.FuncDecl
		pkg  *Package
	}
	index := map[*types.Func]declInfo{}
	var roots []*hotFunc
	for _, pkg := range module {
		for _, file := range pkg.Files {
			for _, d := range file.Decls {
				fn, ok := d.(*ast.FuncDecl)
				if !ok || fn.Body == nil {
					continue
				}
				obj, ok := pkg.Info.Defs[fn.Name].(*types.Func)
				if !ok {
					continue
				}
				index[obj] = declInfo{fn, pkg}
				if funcHasDirective(fn, dirHotPath) {
					roots = append(roots, &hotFunc{decl: fn, pkg: pkg, root: funcDisplayName(fn)})
				}
			}
		}
	}

	visited := map[*ast.FuncDecl]bool{}
	var closure []*hotFunc
	queue := append([]*hotFunc(nil), roots...)
	for len(queue) > 0 {
		hf := queue[0]
		queue = queue[1:]
		if visited[hf.decl] {
			continue
		}
		visited[hf.decl] = true
		closure = append(closure, hf)
		ast.Inspect(hf.decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := staticCallee(hf.pkg.Info, call)
			if callee == nil {
				return true
			}
			di, ok := index[callee]
			if !ok || visited[di.decl] {
				return true // out of module, interface dispatch, or seen
			}
			if funcHasDirective(di.decl, dirAllocOK) {
				return true // reviewed boundary: traversal stops
			}
			queue = append(queue, &hotFunc{decl: di.decl, pkg: di.pkg, root: hf.root})
			return true
		})
	}
	return closure
}

// staticCallee resolves a call to the concrete module-level function or
// method it invokes, or nil for interface dispatch, function values,
// builtins, and conversions.
func staticCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := info.Uses[fun].(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			if f, ok := sel.Obj().(*types.Func); ok {
				return f
			}
			return nil
		}
		if f, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return f // package-qualified call
		}
	}
	return nil
}

// funcDisplayName renders "(*T).Method" or "Func" for diagnostics.
func funcDisplayName(fn *ast.FuncDecl) string {
	if fn.Recv == nil || len(fn.Recv.List) == 0 {
		return fn.Name.Name
	}
	var buf bytes.Buffer
	printer.Fprint(&buf, token.NewFileSet(), fn.Recv.List[0].Type)
	return "(" + buf.String() + ")." + fn.Name.Name
}

// checkHotBody reports the allocating constructs in one hot function.
func checkHotBody(pass *Pass, idx *directiveIndex, hf *hotFunc) {
	info := pass.Pkg.Info
	where := funcDisplayName(hf.decl)
	ctx := where
	if ctx != hf.root {
		ctx += " (hot path rooted at " + hf.root + ")"
	}

	report := func(n ast.Node, format string, args ...any) {
		if idx.at(n.Pos(), dirAllocOK) {
			return
		}
		args = append(args, ctx)
		pass.Reportf(n.Pos(), format+" in %s", args...)
	}

	// Appends of the form x = append(x, ...) grow the target's own
	// scratch: amortized allocation-free in steady state, allowed.
	selfAppend := map[*ast.CallExpr]bool{}
	// Call positions, so a method-value selector used as call.Fun is not
	// mistaken for a captured method value.
	callFuns := map[ast.Expr]bool{}
	ast.Inspect(hf.decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for i := range n.Rhs {
				call, ok := n.Rhs[i].(*ast.CallExpr)
				if !ok || !isBuiltin(info, call, "append") || len(call.Args) == 0 {
					continue
				}
				if exprString(n.Lhs[i]) == exprString(call.Args[0]) {
					selfAppend[call] = true
				}
			}
		case *ast.CallExpr:
			callFuns[ast.Unparen(n.Fun)] = true
		}
		return true
	})

	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if isBuiltin(info, n, "panic") {
				// Failure paths never run in steady state; their
				// arguments (fmt.Sprintf and friends) are exempt.
				return false
			}
			checkCall(pass, info, report, n, selfAppend)
		case *ast.CompositeLit:
			switch info.TypeOf(n).Underlying().(type) {
			case *types.Slice:
				report(n, "slice literal allocates")
			case *types.Map:
				report(n, "map literal allocates")
			}
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
					report(n, "&composite literal escapes to the heap")
				}
			}
		case *ast.FuncLit:
			if capturesOuter(info, hf.decl, n) {
				report(n, "closure captures outer variables and allocates")
			}
		case *ast.SelectorExpr:
			if sel, ok := info.Selections[n]; ok && sel.Kind() == types.MethodVal && !callFuns[n] {
				report(n, "method value allocates a bound closure")
			}
		case *ast.GoStmt:
			report(n, "goroutine launch allocates")
		case *ast.BinaryExpr:
			if n.Op == token.ADD && info.Types[n].Value == nil {
				if b, ok := info.TypeOf(n).Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
					report(n, "string concatenation allocates")
				}
			}
		}
		return true
	}
	ast.Inspect(hf.decl.Body, walk)
}

// checkCall reports allocating calls and boxing at call sites.
func checkCall(pass *Pass, info *types.Info, report func(ast.Node, string, ...any), call *ast.CallExpr, selfAppend map[*ast.CallExpr]bool) {
	// Builtins.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, ok := info.Uses[id].(*types.Builtin); ok {
			switch id.Name {
			case "make":
				report(call, "make allocates")
			case "new":
				report(call, "new allocates")
			case "append":
				if !selfAppend[call] {
					report(call, "append beyond the target's own scratch allocates")
				}
			}
			return
		}
	}

	// Conversions: string <-> byte/rune slices copy; conversion to an
	// interface boxes.
	if tv, ok := info.Types[ast.Unparen(call.Fun)]; ok && tv.IsType() && len(call.Args) == 1 {
		to := tv.Type
		from := info.TypeOf(call.Args[0])
		if isStringByteConv(to, from) {
			report(call, "string/byte-slice conversion copies and allocates")
		} else if types.IsInterface(to) && boxes(from) {
			report(call, "conversion to interface boxes and allocates")
		}
		return
	}

	// Known-allocating standard library entry points.
	if callee := staticCallee(info, call); callee != nil && callee.Pkg() != nil {
		if names, ok := allocatingStdlib[callee.Pkg().Path()]; ok && (names == nil || names[callee.Name()]) {
			report(call, "call to %s.%s allocates", callee.Pkg().Path(), callee.Name())
		}
	}

	// Interface boxing of arguments.
	sig, ok := info.TypeOf(call.Fun).(*types.Signature)
	if !ok {
		return
	}
	for i, arg := range call.Args {
		var param types.Type
		switch {
		case sig.Variadic() && i >= sig.Params().Len()-1:
			if call.Ellipsis.IsValid() {
				continue // slice passed through, no per-element boxing
			}
			param = sig.Params().At(sig.Params().Len() - 1).Type().(*types.Slice).Elem()
		case i < sig.Params().Len():
			param = sig.Params().At(i).Type()
		default:
			continue
		}
		if !types.IsInterface(param) {
			continue
		}
		at := info.Types[arg]
		if at.IsNil() {
			continue
		}
		if boxes(at.Type) {
			report(arg, "argument boxed into interface parameter allocates")
		}
	}
}

// boxes reports whether storing a value of type t in an interface
// allocates: anything but an interface or a pointer-shaped type.
func boxes(t types.Type) bool {
	if t == nil || types.IsInterface(t) {
		return false
	}
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return false
	case *types.Basic:
		return u.Kind() != types.UnsafePointer && u.Kind() != types.UntypedNil
	}
	return true
}

func isStringByteConv(to, from types.Type) bool {
	return (isString(to) && isByteOrRuneSlice(from)) ||
		(isByteOrRuneSlice(to) && isString(from))
}

func isString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune)
}

// capturesOuter reports whether a function literal references variables
// declared in the enclosing function (closure capture: the captured
// environment is heap-allocated). References to package-level state are
// not captures.
func capturesOuter(info *types.Info, enclosing *ast.FuncDecl, lit *ast.FuncLit) bool {
	captured := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || captured {
			return !captured
		}
		v, ok := info.Uses[id].(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		if v.Pos() >= enclosing.Pos() && v.Pos() < lit.Pos() {
			captured = true
		}
		return true
	})
	return captured
}

// isBuiltin reports whether call invokes the named builtin.
func isBuiltin(info *types.Info, call *ast.CallExpr, name string) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, ok = info.Uses[id].(*types.Builtin)
	return ok
}

// exprString renders an expression for syntactic comparison (the
// self-append test).
func exprString(e ast.Expr) string {
	var buf bytes.Buffer
	printer.Fprint(&buf, token.NewFileSet(), e)
	return buf.String()
}
