package analysis

// Fixture tests: each analyzer runs over a package under
// testdata/src/<import-path> and its diagnostics are checked against
// the fixture's `// want` comments, analysistest-style — every
// diagnostic must match a want regexp on its line, and every want must
// be matched. The fixtures deliberately reuse the real module's import
// paths (hybridsched/internal/sim, ...), so the analyzers' package
// coverage lists apply to them unchanged.

import (
	"fmt"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

func TestNoDeterminismFixture(t *testing.T) {
	runFixture(t, NoDeterminism, "hybridsched/internal/sim")
}

func TestHotPathAllocFixture(t *testing.T) {
	runFixture(t, HotPathAlloc, "hybridsched/internal/match")
}

func TestHotPathAllocMetricsFixture(t *testing.T) {
	runFixture(t, HotPathAlloc, "hybridsched/internal/metrics")
}

func TestHotPathAllocBitsetFixture(t *testing.T) {
	runFixture(t, HotPathAlloc, "hybridsched/internal/demand")
}

func TestPoolPairFixture(t *testing.T) {
	runFixture(t, PoolPair, "hybridsched/internal/sched")
}

func TestInternalBoundaryFixture(t *testing.T) {
	runFixture(t, InternalBoundary, "hybridsched/cmd/leaky")
}

func TestChanDisciplineFixture(t *testing.T) {
	runFixture(t, ChanDiscipline, "hybridsched/internal/serve")
}

// runFixture loads one fixture package, runs one analyzer over it, and
// diffs the diagnostics against the want comments.
func runFixture(t *testing.T, a *Analyzer, importPath string) {
	t.Helper()
	pkg, err := LoadFixture(filepath.Join("testdata", "src"), importPath)
	if err != nil {
		t.Fatalf("load fixture %s: %v", importPath, err)
	}
	diags, err := Run([]*Package{pkg}, []*Analyzer{a})
	if err != nil {
		t.Fatalf("run %s on %s: %v", a.Name, importPath, err)
	}
	wants := parseWants(t, pkg)

	for _, d := range diags {
		key := posKey{filepath.Base(d.Pos.Filename), d.Pos.Line}
		matched := false
		for _, w := range wants[key] {
			if !w.matched && w.re.MatchString(d.Message) {
				w.matched = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic at %s:%d: %s", key.file, key.line, d.Message)
		}
	}
	for key, ws := range wants {
		for _, w := range ws {
			if !w.matched {
				t.Errorf("no diagnostic at %s:%d matching %q", key.file, key.line, w.re)
			}
		}
	}
}

type posKey struct {
	file string
	line int
}

type want struct {
	re      *regexp.Regexp
	matched bool
}

// parseWants collects the `// want "re" ...` expectations of a fixture
// package, keyed by file and line. Patterns may be backquoted or
// double-quoted; several patterns on one comment expect several
// diagnostics on that line.
func parseWants(t *testing.T, pkg *Package) map[posKey][]*want {
	t.Helper()
	wants := map[posKey][]*want{}
	for _, file := range pkg.Files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "// want ")
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				key := posKey{filepath.Base(pos.Filename), pos.Line}
				pats, err := splitWantPatterns(text)
				if err != nil {
					t.Fatalf("%s:%d: %v", key.file, key.line, err)
				}
				for _, p := range pats {
					re, err := regexp.Compile(p)
					if err != nil {
						t.Fatalf("%s:%d: bad want pattern %q: %v", key.file, key.line, p, err)
					}
					wants[key] = append(wants[key], &want{re: re})
				}
			}
		}
	}
	if len(wants) == 0 {
		t.Fatalf("fixture %s has no want comments", pkg.PkgPath)
	}
	return wants
}

// splitWantPatterns parses a sequence of quoted regexps.
func splitWantPatterns(s string) ([]string, error) {
	var pats []string
	for {
		s = strings.TrimSpace(s)
		if s == "" {
			return pats, nil
		}
		q := s[0]
		if q != '"' && q != '`' {
			return nil, fmt.Errorf("want pattern must be quoted, have %q", s)
		}
		end := strings.IndexByte(s[1:], q)
		if end < 0 {
			return nil, fmt.Errorf("unterminated want pattern %q", s)
		}
		pats = append(pats, s[1:1+end])
		s = s[2+end:]
	}
}
