// Command leaky is the internalboundary fixture: a cmd/ package that
// reaches into the sealed internal tree instead of using the public
// surface.
package main

import "hybridsched/internal/secret" // want `hybridsched/cmd/leaky imports sealed package hybridsched/internal/secret`

func main() { _ = secret.Hidden() }
