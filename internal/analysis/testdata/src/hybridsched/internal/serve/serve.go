// Package serve is the chandiscipline fixture: channel creation and
// send discipline in the backpressure layer — unbounded data channels,
// bare sends, and selects without a drop policy are violations; bounded
// channels with default clauses, struct{} signal channels, and reviewed
// unbounded-ok lines are not.
package serve

// Frame is a data-carrying payload.
type Frame struct{ Epoch uint64 }

// Bad creates an unbounded data channel and sends without a drop
// policy.
func Bad(f Frame) {
	ch := make(chan Frame) // want `unbuffered hybridsched/internal/serve.Frame channel in the serve layer`
	ch <- f                // want `bare channel send blocks on a slow consumer`
	select {
	case ch <- f: // want `select send without a default case blocks on a slow consumer`
	}
}

// Good shows the compliant shapes.
func Good(f Frame) {
	ch := make(chan Frame, 8)
	select {
	case ch <- f:
	default: // drop-newest
	}
	done := make(chan struct{}) // signal channel: exempt
	close(done)
	legacy := make(chan Frame) //hybridsched:unbounded-ok fixture exception, reviewed
	_ = legacy
}
