// Package sim is the nodeterminism fixture. Its import path matches a
// real result-producing package root, so the analyzer's coverage list
// applies to it unchanged: wall-clock reads, math/rand, and unordered
// map iteration are violations unless a directive records a review.
package sim

import (
	"math/rand" // want `import of math/rand: its stream is unspecified across Go versions`
	"time"
)

// Draw leaks an unspecified random stream into results.
func Draw() int { return rand.Int() }

// Tick reads the wall clock without review.
func Tick() int64 {
	return time.Now().UnixNano() // want `time.Now reads the wall clock in a result-producing package`
}

// Elapsed is reviewed: measuring wall time is its entire purpose.
//
//hybridsched:wallclock
func Elapsed(start time.Time) time.Duration { return time.Since(start) }

// Stamp has one reviewed wall-clock read on the line itself.
func Stamp() int64 {
	t := time.Now() //hybridsched:wallclock annotation fixture
	return t.Unix()
}

// Wait sleeps in a result-producing package.
func Wait(d time.Duration) {
	time.Sleep(d) // want `time.Sleep reads the wall clock in a result-producing package`
}

// Keys leaks map iteration order into its result.
func Keys(m map[string]int) []string {
	var out []string
	for k := range m { // want `map iteration order is randomized`
		out = append(out, k)
	}
	return out
}

// Sum folds counters; the fold is commutative, so order is irrelevant.
func Sum(m map[string]int) int {
	total := 0
	for _, v := range m { //hybridsched:mapiter commutative fold
		total += v
	}
	return total
}
