// Package demand is a stub of the pooled demand-matrix vocabulary for
// the poolpair fixture: same import path and same acquirer/Release
// names as the real package, with none of the implementation.
package demand

// Matrix is a pooled demand matrix.
type Matrix struct{ n int }

// FromPool leases a matrix from the per-size pool.
func FromPool(n int) *Matrix { return &Matrix{n: n} }

// Clone leases a pooled copy of m.
func (m *Matrix) Clone() *Matrix { return &Matrix{n: m.n} }

// Quantize leases a pooled quantized copy of m.
func (m *Matrix) Quantize(q int64) *Matrix { return &Matrix{n: m.n} }

// Stuff leases a pooled doubly-stochastic completion of m.
func (m *Matrix) Stuff() *Matrix { return &Matrix{n: m.n} }

// Release returns m to the pool.
func (m *Matrix) Release() {}

// Total sums all entries.
func (m *Matrix) Total() int64 { return 0 }
