// Bitset fixture for hotpathalloc: the word-parallel kernels the
// matching algorithms run per slot. The shapes under test are the ones
// the real internal/demand/bitset.go relies on — word loops,
// math/bits scans and fixed backing arrays stay silent; anything that
// could put a word slice (or its words, boxed) on the heap is flagged.
package demand

import "math/bits"

// Bitset is one row of eligibility bits, 64 ports per word.
type Bitset struct {
	n int
	w []uint64
}

// Wordset carries per-arbiter word scratch reused across slots.
type Wordset struct {
	scratch []uint64
}

// FirstAndNot scans ws &^ excl word-parallel. Pure word arithmetic:
// nothing here allocates and nothing is reported.
//
//hybridsched:hotpath
func FirstAndNot(ws, excl []uint64) int {
	for i, w := range ws {
		if i < len(excl) {
			w &^= excl[i]
		}
		if w != 0 {
			return i<<6 + bits.TrailingZeros64(w)
		}
	}
	return -1
}

// Accumulate is a hot root exercising the allocation shapes a bitset
// kernel could slip into.
//
//hybridsched:hotpath
func (s *Wordset) Accumulate(b *Bitset, n int) int {
	s.scratch = s.scratch[:0]
	for _, w := range b.w {
		s.scratch = append(s.scratch, w) // self-append scratch growth: allowed
	}
	masked := make([]uint64, len(b.w)) // want `make allocates`
	_ = masked
	return s.tail(n)
}

// tail is unannotated but reached from Accumulate, so it inherits the
// contract transitively.
func (s *Wordset) tail(n int) int {
	rows := [][]uint64{s.scratch} // want `slice literal allocates`
	count := s.wordCount          // want `method value allocates a bound closure`
	return len(rows) + count() + n
}

// wordCount reports the scratch length; binding it as a method value
// above is what allocates, not calling it.
func (s *Wordset) wordCount() int { return len(s.scratch) }

// PopcountRows is off the hot path; its allocations are its own
// business.
func PopcountRows(rows [][]uint64) []int {
	out := make([]int, len(rows))
	for i, ws := range rows {
		for _, w := range ws {
			out[i] += bits.OnesCount64(w)
		}
	}
	return out
}
