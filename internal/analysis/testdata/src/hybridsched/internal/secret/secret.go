// Package secret is a sealed internal stub for the internalboundary
// fixture.
package secret

// Hidden is an internal-only helper.
func Hidden() int { return 42 }
