// Package sched is the poolpair fixture: pooled matrix acquisitions
// that leak, and the ownership shapes (Release, return, hand-off,
// chained Release) that satisfy the contract.
package sched

import "hybridsched/internal/demand"

// Leak acquires a pooled matrix, uses it locally, and drops it.
func Leak(n int) {
	m := demand.FromPool(n) // want `m acquired from the matrix pool is never Released and never handed to another owner`
	m.Total()
}

// Peek discards an unbound pooled clone in place.
func Peek(m *demand.Matrix) {
	m.Clone().Total() // want `pooled matrix from m.Clone is discarded without Release`
}

// Paired acquires, uses, and Releases: clean.
func Paired(n int) int64 {
	m := demand.FromPool(n)
	t := m.Total()
	m.Release()
	return t
}

// Snapshot hands ownership of the clone to the caller: clean.
func Snapshot(m *demand.Matrix) *demand.Matrix {
	c := m.Clone()
	return c
}

// HandOff transfers ownership to consume, which Releases: clean.
func HandOff(n int) {
	m := demand.FromPool(n)
	consume(m)
}

func consume(m *demand.Matrix) { m.Release() }

// Churn pairs an unbound acquisition with an immediate Release: clean.
func Churn(n int) {
	demand.FromPool(n).Release()
}
