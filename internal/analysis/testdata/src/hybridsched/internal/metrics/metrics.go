// Package metrics is the hotpathalloc fixture for the telemetry layer:
// the observation path (counter adds, gauge sets, histogram observes)
// must be allocation-free because serve's epoch loop calls it per slot,
// while registration and exposition are cold and sit behind reviewed
// alloc-ok boundaries.
package metrics

import "sort"

// Counter is an atomic cumulative count.
type Counter struct{ v uint64 }

// Add is reached from the hot root and stays allocation-free.
func (c *Counter) Add(n uint64) { c.v += n }

// Histogram is a fixed-bucket distribution.
type Histogram struct {
	buckets [8]uint64
	labels  []string
}

// Observe records one sample; index arithmetic only, no heap.
func (h *Histogram) Observe(v int64) {
	i := int(v) & 7
	h.buckets[i]++
}

// Instruments bundles the per-epoch series.
type Instruments struct {
	epochs  Counter
	latency Histogram
}

// ObserveEpoch is the hot-path root: the instrument updates it reaches
// inherit the zero-allocation contract.
//
//hybridsched:hotpath
func (in *Instruments) ObserveEpoch(ns int64) {
	in.epochs.Add(1)
	in.latency.Observe(ns)
	labels := map[string]string{"shard": "0"} // want `map literal allocates`
	_ = labels
	in.describe(ns)
}

// describe is not annotated but is reached transitively from the root:
// per-observation label rendering is exactly the mistake the contract
// exists to catch.
func (in *Instruments) describe(ns int64) {
	rendered := append(in.latency.labels, "epoch") // want `append beyond the target's own scratch allocates`
	_ = rendered
	_ = ns
}

// Register is the cold registration path: a reviewed boundary, free to
// allocate the series storage up front.
//
//hybridsched:alloc-ok registration is cold; series storage is built once
func (in *Instruments) Register(names []string) {
	in.latency.labels = make([]string, len(names)) // not reported: behind the boundary
	copy(in.latency.labels, names)
}

// WriteText is exposition: cold, sorted, off the hot path entirely.
func (in *Instruments) WriteText(names []string) []string {
	out := append([]string(nil), names...)
	sort.Strings(out)
	return out
}
