// Package match is the hotpathalloc fixture: an annotated hot-path
// root, the helpers it statically reaches, a reviewed alloc-ok
// boundary, and the allowed shapes (self-append scratch growth, panic
// arguments, line-level excuses).
package match

import "fmt"

// Arbiter carries per-port scratch reused across slots.
type Arbiter struct {
	order []int
	names []string
}

// Schedule is a hot-path root: everything it statically calls inside
// the module inherits the zero-allocation contract.
//
//hybridsched:hotpath
func (a *Arbiter) Schedule(n int) {
	if n < 0 {
		panic(fmt.Sprintf("match: negative port count %d", n)) // failure path: exempt
	}
	a.order = a.order[:0]
	for i := 0; i < n; i++ {
		a.order = append(a.order, i) // self-append scratch growth: allowed
	}
	scratch := make([]int, n) // want `make allocates`
	_ = scratch
	a.helper(n)
	a.snapshot(n)
}

// helper is not annotated but is reached transitively from Schedule.
func (a *Arbiter) helper(n int) {
	a.names = append(a.names, fmt.Sprint(n)) // want `call to fmt.Sprint allocates` `argument boxed into interface parameter allocates`
}

// snapshot is a reviewed allocation boundary: the traversal stops here
// and its body may allocate.
//
//hybridsched:alloc-ok clones one report per epoch for observers, by design
func (a *Arbiter) snapshot(n int) {
	buf := make([]int, n) // not reported: behind the alloc-ok boundary
	_ = buf
}

// Reorder is a hot root demonstrating line-level excuses and closure
// capture.
//
//hybridsched:hotpath
func (a *Arbiter) Reorder(n int) {
	//hybridsched:alloc-ok one-time warmup growth, reviewed
	a.order = append(a.order[:1], 0)
	f := func() { a.order[0] = n } // want `closure captures outer variables and allocates`
	f()
}

// Cold is off the hot path entirely; it may allocate freely.
func Cold(n int) []int { return make([]int, n) }
