// Package match is the hotpathalloc fixture: an annotated hot-path
// root, the helpers it statically reaches, a reviewed alloc-ok
// boundary, and the allowed shapes (self-append scratch growth, panic
// arguments, line-level excuses).
package match

import "fmt"

// Arbiter carries per-port scratch reused across slots.
type Arbiter struct {
	order []int
	names []string
}

// Schedule is a hot-path root: everything it statically calls inside
// the module inherits the zero-allocation contract.
//
//hybridsched:hotpath
func (a *Arbiter) Schedule(n int) {
	if n < 0 {
		panic(fmt.Sprintf("match: negative port count %d", n)) // failure path: exempt
	}
	a.order = a.order[:0]
	for i := 0; i < n; i++ {
		a.order = append(a.order, i) // self-append scratch growth: allowed
	}
	scratch := make([]int, n) // want `make allocates`
	_ = scratch
	a.helper(n)
	a.snapshot(n)
}

// helper is not annotated but is reached transitively from Schedule.
func (a *Arbiter) helper(n int) {
	a.names = append(a.names, fmt.Sprint(n)) // want `call to fmt.Sprint allocates` `argument boxed into interface parameter allocates`
}

// snapshot is a reviewed allocation boundary: the traversal stops here
// and its body may allocate.
//
//hybridsched:alloc-ok clones one report per epoch for observers, by design
func (a *Arbiter) snapshot(n int) {
	buf := make([]int, n) // not reported: behind the alloc-ok boundary
	_ = buf
}

// Reorder is a hot root demonstrating line-level excuses and closure
// capture.
//
//hybridsched:hotpath
func (a *Arbiter) Reorder(n int) {
	//hybridsched:alloc-ok one-time warmup growth, reviewed
	a.order = append(a.order[:1], 0)
	f := func() { a.order[0] = n } // want `closure captures outer variables and allocates`
	f()
}

// Decomposer models the frame-decomposition inner loop: recycled
// extraction scratch, an amortized arena with a line-level excuse, a
// lazily sized memo behind the same shape — and the bug the analyzer
// exists to catch, a per-extraction allocation inside the loop.
type Decomposer struct {
	matchCol []int32
	memo     []int32
	arena    []int32
	slots    [][]int32
}

// Decompose is the hot decomposition root: extraction scratch must be
// recycled, arena growth must be excused at the growth site, and a
// fresh per-step allocation is a defect.
//
//hybridsched:hotpath
func (d *Decomposer) Decompose(n int) {
	if d.memo == nil {
		//hybridsched:alloc-ok one-time lazy scratch sized at construction dimension
		d.memo = make([]int32, n*n)
	}
	d.arena = d.arena[:0]
	for step := 0; step < n; step++ {
		for j := range d.matchCol {
			d.matchCol[j] = -1
		}
		d.extract(n)
		//hybridsched:alloc-ok amortized growth of the recycled matching arena
		d.arena = append(d.arena, d.matchCol...)
		m := make([]int32, n)        // want `make allocates`
		d.slots = append(d.slots, m) // self-append scratch growth: allowed
	}
}

// extract is reached transitively from the decomposition root and
// inherits its contract.
func (d *Decomposer) extract(n int) {
	for i := 0; i < n && i < len(d.matchCol); i++ {
		d.matchCol[i] = int32(i)
	}
}

// Cold is off the hot path entirely; it may allocate freely.
func Cold(n int) []int { return make([]int, n) }
