package analysis

// The tree itself must satisfy its own contracts: the full schedlint
// suite over the whole module reports nothing. This is `make lint` as a
// test, so a violation fails `go test ./...` even where the Makefile
// isn't in the loop.

import (
	"path/filepath"
	"testing"
)

func TestModuleCleanUnderSchedlint(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short mode")
	}
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := LoadModule(root, "./...")
	if err != nil {
		t.Fatalf("load module: %v", err)
	}
	diags, err := Run(pkgs, Analyzers())
	if err != nil {
		t.Fatalf("run suite: %v", err)
	}
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}
