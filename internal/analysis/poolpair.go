package analysis

// poolpair enforces the PR 4 matrix-pooling discipline: a demand matrix
// acquired from the pool (demand.FromPool, or the pooled Clone /
// Quantize / Stuff) must either be Released or handed to another owner
// before the function returns. A matrix that is acquired, used locally
// and then simply dropped is a silent pool leak — correctness survives
// (the GC collects it) but the allocation-free frame loop it was
// pooled for does not.
//
// The check is a may-escape approximation of the flow-sensitive
// contract: a pooled local counts as handed over when it is returned,
// stored (assignment, composite literal, map/channel/slice element),
// passed as a call argument, or captured by a closure — on ANY path.
// Only a local that reaches no Release and no ownership transfer
// anywhere in the function is reported, so every finding is a real
// leak on every path.

import (
	"go/ast"
	"go/types"
)

// poolAcquirers maps the package path of the pooled-matrix vocabulary to
// the functions and methods whose result the caller owns.
var poolAcquirers = map[string]map[string]bool{
	"hybridsched/internal/demand": {
		"FromPool": true, // func FromPool(n int) *Matrix
		"Clone":    true, // (*Matrix).Clone
		"Quantize": true, // (*Matrix).Quantize
		"Stuff":    true, // (*Matrix).Stuff
	},
}

// poolReleaseName is the method that returns a matrix to the pool.
const poolReleaseName = "Release"

// PoolPair is the pool-discipline analyzer.
var PoolPair = &Analyzer{
	Name: "poolpair",
	Doc: `require a Release (or an ownership hand-over) for every pooled demand-matrix acquisition

demand.FromPool and the pooled Clone/Quantize/Stuff lend the caller a
matrix from the per-size sync.Pool; dropping one on the floor defeats
the pooling that keeps per-frame scheduling allocation-free. A local
that is never Released, returned, stored, passed on, or captured is
reported at its acquisition site.`,
	Run: runPoolPair,
}

func runPoolPair(pass *Pass) error {
	info := pass.Pkg.Info
	for _, file := range pass.Pkg.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkPoolBody(pass, info, fn)
		}
	}
	return nil
}

// isPoolAcquire reports whether call's static callee is one of the
// pool-acquiring functions.
func isPoolAcquire(info *types.Info, call *ast.CallExpr) bool {
	callee := staticCallee(info, call)
	if callee == nil || callee.Pkg() == nil {
		return false
	}
	names, ok := poolAcquirers[callee.Pkg().Path()]
	return ok && names[callee.Name()]
}

func checkPoolBody(pass *Pass, info *types.Info, fn *ast.FuncDecl) {
	type acquisition struct {
		call *ast.CallExpr
		obj  *types.Var // local bound to the result, nil if unbound
		id   *ast.Ident
	}
	var acqs []acquisition
	bound := map[*ast.CallExpr]bool{}

	// Pass 1: acquisitions bound to fresh or existing locals.
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		stmt, ok := n.(*ast.AssignStmt)
		if !ok || len(stmt.Lhs) != len(stmt.Rhs) {
			return true
		}
		for i := range stmt.Rhs {
			call, ok := ast.Unparen(stmt.Rhs[i]).(*ast.CallExpr)
			if !ok || !isPoolAcquire(info, call) {
				continue
			}
			id, ok := stmt.Lhs[i].(*ast.Ident)
			if !ok || id.Name == "_" {
				continue // stored through a selector/index: handed over
			}
			var v *types.Var
			if def, ok := info.Defs[id].(*types.Var); ok {
				v = def
			} else if use, ok := info.Uses[id].(*types.Var); ok {
				if use.Parent() == nil || use.Parent() == pass.Pkg.Types.Scope() {
					continue // package-level: long-lived owner
				}
				v = use
			}
			if v != nil {
				bound[call] = true
				acqs = append(acqs, acquisition{call: call, obj: v, id: id})
			}
		}
		return true
	})

	// Unbound acquisitions: the result is consumed in place. A return
	// value or argument transfers ownership; an expression-statement
	// receiver (demand.FromPool(n).Total()) discards the matrix.
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || bound[call] || !isPoolAcquire(info, call) {
			return true
		}
		if parentDiscards(fn, call) {
			pass.Reportf(call.Pos(),
				"pooled matrix from %s is discarded without Release", callSummary(call))
		}
		return true
	})

	// Pass 2: for each bound acquisition, scan every use of the local.
	for _, a := range acqs {
		released, escaped := false, false
		ast.Inspect(fn.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				// v.Release() or v passed as an argument.
				if sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok {
					if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok &&
						info.Uses[id] == a.obj && sel.Sel.Name == poolReleaseName {
						released = true
						return true
					}
				}
				for _, arg := range n.Args {
					if usesVar(info, arg, a.obj) {
						escaped = true
					}
				}
			case *ast.ReturnStmt:
				for _, res := range n.Results {
					if usesVar(info, res, a.obj) {
						escaped = true
					}
				}
			case *ast.AssignStmt:
				// v on the right-hand side of any later assignment is a
				// hand-over (to a field, element, or another binding).
				for _, rhs := range n.Rhs {
					if rhs != a.call && usesVar(info, rhs, a.obj) {
						escaped = true
					}
				}
			case *ast.CompositeLit:
				for _, elt := range n.Elts {
					if usesVar(info, elt, a.obj) {
						escaped = true
					}
				}
			case *ast.SendStmt:
				if usesVar(info, n.Value, a.obj) {
					escaped = true
				}
			case *ast.FuncLit:
				// Captured by a closure: lifetime leaves this analysis.
				captured := false
				ast.Inspect(n.Body, func(m ast.Node) bool {
					if id, ok := m.(*ast.Ident); ok && info.Uses[id] == a.obj {
						captured = true
					}
					return !captured
				})
				if captured {
					escaped = true
				}
				return false // don't double-count the closure's own uses
			}
			return true
		})
		if !released && !escaped {
			pass.Reportf(a.call.Pos(),
				"%s acquired from the matrix pool is never Released and never handed to another owner",
				a.id.Name)
		}
	}
}

// usesVar reports whether expr mentions the variable (not as a method
// receiver of Release — plain mention is enough here, callers decide
// the context).
func usesVar(info *types.Info, expr ast.Expr, v *types.Var) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && info.Uses[id] == v {
			found = true
		}
		return !found
	})
	return found
}

// parentDiscards reports whether the acquiring call's result is dropped:
// used as an expression statement or only as the receiver of a chained
// method call that is itself discarded.
func parentDiscards(fn *ast.FuncDecl, call *ast.CallExpr) bool {
	discarded := false
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		stmt, ok := n.(*ast.ExprStmt)
		if !ok {
			return true
		}
		// The statement's expression is the call itself, or a method
		// chain rooted at it.
		e := stmt.X
		for {
			if e == ast.Expr(call) {
				discarded = true
				return false
			}
			c, ok := ast.Unparen(e).(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := ast.Unparen(c.Fun).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if sel.Sel.Name == poolReleaseName {
				return true // FromPool(n).Release() — pointless but paired
			}
			e = sel.X
		}
	})
	return discarded
}

func callSummary(call *ast.CallExpr) string {
	return exprString(call.Fun)
}
