package analysis

// Escape regression: the compiler's own escape analysis
// (go build -gcflags=-m) is diffed against a committed baseline for
// every function in the //hybridsched:hotpath closure. hotpathalloc
// catches allocating constructs by shape; this test catches the ones
// only the optimizer can see — a value that stops stack-allocating
// because an inlining decision changed, a closure that starts escaping.
// New escapes fail the build; fixed ones just make the baseline stale.
//
// Regenerate the baseline after a reviewed change with:
//
//	go test ./internal/analysis -run TestHotPathEscapes -update-escapes

import (
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"
)

var updateEscapes = flag.Bool("update-escapes", false, "rewrite testdata/escapes.txt from the current compiler output")

const escapesBaseline = "testdata/escapes.txt"

// escapeLine matches one compiler diagnostic reporting a heap escape.
var escapeLine = regexp.MustCompile(`^(.+\.go):(\d+):\d+: (.*(?:escapes to heap|moved to heap).*)$`)

func TestHotPathEscapesMatchBaseline(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles the hot-path packages; skipped in -short mode")
	}
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := LoadModule(root, "./internal/demand/...", "./internal/match/...", "./internal/serve/...")
	if err != nil {
		t.Fatalf("load module: %v", err)
	}

	// The hot closure decides both which functions are in scope and
	// which packages must be compiled with -m.
	type span struct {
		name       string
		start, end int
	}
	spans := map[string][]span{} // root-relative slash path -> func spans
	buildPkgs := map[string]bool{}
	for _, hf := range hotClosure(pkgs) {
		p0 := hf.pkg.Fset.Position(hf.decl.Pos())
		p1 := hf.pkg.Fset.Position(hf.decl.End())
		rel, err := filepath.Rel(root, p0.Filename)
		if err != nil {
			t.Fatal(err)
		}
		key := filepath.ToSlash(rel)
		spans[key] = append(spans[key], span{funcDisplayName(hf.decl), p0.Line, p1.Line})
		buildPkgs[hf.pkg.PkgPath] = true
	}
	if len(spans) == 0 {
		t.Fatal("no //hybridsched:hotpath functions found; the closure should cover the arbiters, demand updates, and serve epoch")
	}

	var args []string
	for p := range buildPkgs {
		args = append(args, p)
	}
	sort.Strings(args)
	cmd := exec.Command("go", append([]string{"build", "-gcflags=-m"}, args...)...)
	cmd.Dir = root
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("go build -gcflags=-m: %v\n%s", err, out)
	}

	got := map[string]bool{}
	for _, line := range strings.Split(string(out), "\n") {
		m := escapeLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		file := filepath.ToSlash(strings.TrimPrefix(m[1], "./"))
		lineNo, err := strconv.Atoi(m[2])
		if err != nil {
			continue
		}
		for _, s := range spans[file] {
			if s.start <= lineNo && lineNo <= s.end {
				// Line numbers are deliberately dropped so unrelated
				// edits above a hot function don't churn the baseline.
				got[fmt.Sprintf("%s: %s: %s", file, s.name, m[3])] = true
				break
			}
		}
	}
	keys := make([]string, 0, len(got))
	for k := range got {
		keys = append(keys, k)
	}
	sort.Strings(keys)

	if *updateEscapes {
		var b strings.Builder
		b.WriteString("# Heap escapes inside the //hybridsched:hotpath closure, per\n")
		b.WriteString("# go build -gcflags=-m, one per line without line numbers.\n")
		b.WriteString("# Regenerate: go test ./internal/analysis -run TestHotPathEscapes -update-escapes\n")
		for _, k := range keys {
			b.WriteString(k)
			b.WriteString("\n")
		}
		if err := os.WriteFile(escapesBaseline, []byte(b.String()), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %d escape(s) to %s", len(keys), escapesBaseline)
		return
	}

	baseline := map[string]bool{}
	data, err := os.ReadFile(escapesBaseline)
	if err != nil {
		t.Fatalf("read %s (regenerate with -update-escapes): %v", escapesBaseline, err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		baseline[line] = true
	}

	for _, k := range keys {
		if !baseline[k] {
			t.Errorf("new heap escape on the hot path:\n  %s\n(review it, then regenerate %s with -update-escapes)", k, escapesBaseline)
		}
	}
	for k := range baseline {
		if !got[k] {
			t.Logf("baseline entry no longer observed (stale, safe to regenerate): %s", k)
		}
	}
}
