package hybridsched

import (
	"hybridsched/internal/platform"
	"hybridsched/internal/sim"
)

// The NetFPGA-style platform contract: an emulated device brought up and
// observed entirely through a 32-bit register file, the way a driver would
// program the paper's hardware framework. See examples/prototyping.

// Device is the emulated register-file device.
type Device = platform.Device

// NewDevice returns a stopped device on the given simulator; program its
// registers, then set CtrlStart.
func NewDevice(s *sim.Simulator) *Device { return platform.NewDevice(s) }

// Register addresses (byte addresses, word-aligned).
//
// RegAlgorithm is an index into the sorted Algorithms() list, resolved
// when CtrlStart is written. Registering a new algorithm re-sorts that
// list, so complete all RegisterAlgorithm calls (normally init-time)
// before computing an index to program — an index captured earlier may
// silently select a different algorithm.
const (
	RegID        = platform.RegID        // RO: device identifier
	RegVersion   = platform.RegVersion   // RO: register-map version
	RegPorts     = platform.RegPorts     // RW: port count
	RegAlgorithm = platform.RegAlgorithm // RW: index into Algorithms()
	RegSlotNs    = platform.RegSlotNs    // RW: transmission slot, ns
	RegReconfNs  = platform.RegReconfNs  // RW: OCS reconfiguration, ns
	RegLineMbps  = platform.RegLineMbps  // RW: line rate, Mbps
	RegControl   = platform.RegControl   // RW: control bits (Ctrl*)
	RegStatus    = platform.RegStatus    // RO: bit0 running
	RegSeedLo    = platform.RegSeedLo    // RW: algorithm seed (low word)
	RegSeedHi    = platform.RegSeedHi    // RW: algorithm seed (high word)

	RegCycles    = platform.RegCycles    // RO: scheduler cycles completed
	RegGrants    = platform.RegGrants    // RO: (input,output) grants issued
	RegDelivered = platform.RegDelivered // RO: packets delivered
	RegDropped   = platform.RegDropped   // RO: packets dropped (all causes)
	RegOCSPkts   = platform.RegOCSPkts   // RO: packets via OCS
	RegEPSPkts   = platform.RegEPSPkts   // RO: packets via EPS
	RegConfigs   = platform.RegConfigs   // RO: OCS reconfigurations
)

// Control-register bits.
const (
	CtrlStart        = platform.CtrlStart
	CtrlPipelined    = platform.CtrlPipelined
	CtrlHostBuffered = platform.CtrlHostBuffered
	CtrlEnableEPS    = platform.CtrlEnableEPS
)

// DeviceID is the value of RegID.
const DeviceID = platform.DeviceID

// RegMapVersion is the register-map version reported at RegVersion.
const RegMapVersion = platform.Version
