package hybridsched

import (
	"hybridsched/internal/demand"
	"hybridsched/internal/match"
)

// The scheduling-logic plug-in point — the slot of the paper's Figure 2
// where "users implement novel design". External packages implement
// Algorithm against DemandReader and install it with RegisterAlgorithm;
// the name then works everywhere a built-in does (FabricConfig.Algorithm,
// cmd/hybridsim -alg, the platform register file). See examples/customalg.
type (
	// Matching maps input port -> output port (or Unmatched). A valid
	// matching assigns each output to at most one input.
	Matching = match.Matching
	// Complexity describes an algorithm's cost for the timing models:
	// serial hardware depth in clocked steps, and scalar software ops.
	Complexity = match.Complexity
)

// Unmatched marks an input port with no output assigned this slot.
const Unmatched = match.Unmatched

// NewMatching returns an all-unmatched matching for n ports.
func NewMatching(n int) Matching { return match.NewMatching(n) }

// DemandReader is the read-only demand view an Algorithm schedules from.
// Entry (i, j) is the estimated backlog, in bits, from input i to output j.
// The view is only on loan for the duration of a Schedule call — the
// scheduling loop recycles the underlying matrix afterwards — so
// implementations must copy any entries they keep across calls.
type DemandReader interface {
	// N returns the port count.
	N() int
	// At returns the pending demand from input i to output j.
	At(i, j int) int64
}

// The estimator's matrix is exactly what algorithms receive.
var _ DemandReader = (*demand.Matrix)(nil)

// Algorithm computes crossbar matchings from demand. Implementations may
// keep state across calls (round-robin pointers); Reset clears it.
type Algorithm interface {
	// Name identifies the algorithm in reports and the registry.
	Name() string
	// Schedule returns a matching serving d. Zero entries of d are
	// non-requests; the matching should only pair ports with positive
	// demand (demand-oblivious schedules like TDMA are the exception).
	Schedule(d DemandReader) Matching
	// Complexity reports cost for an n-port instance; the timing models
	// turn it into schedule-computation latency.
	Complexity(n int) Complexity
	// Reset clears inter-slot state.
	Reset()
}

// AlgorithmFactory constructs an algorithm for an n-port switch with a
// seed for randomized algorithms.
type AlgorithmFactory func(ports int, seed uint64) Algorithm

// RegisterAlgorithm installs a factory under name, alongside the built-in
// algorithms. Like database/sql.Register it is meant for init-time use and
// panics on a duplicate name: a collision is a programming error.
func RegisterAlgorithm(name string, factory AlgorithmFactory) {
	match.Register(name, func(n int, seed uint64) match.Algorithm {
		return algorithmAdapter{impl: factory(n, seed)}
	})
}

// algorithmAdapter bridges a public Algorithm onto the internal registry
// contract.
type algorithmAdapter struct{ impl Algorithm }

func (a algorithmAdapter) Name() string                       { return a.impl.Name() }
func (a algorithmAdapter) Schedule(d *demand.Matrix) Matching { return a.impl.Schedule(d) }
func (a algorithmAdapter) Complexity(n int) Complexity        { return a.impl.Complexity(n) }
func (a algorithmAdapter) Reset()                             { a.impl.Reset() }

// Algorithms returns the names of all registered scheduling algorithms,
// built-in and plugged-in, in sorted order.
func Algorithms() []string { return match.Names() }

// KnownAlgorithm reports whether name is a registered algorithm.
func KnownAlgorithm(name string) bool { return match.Known(name) }
