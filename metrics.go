package hybridsched

import "hybridsched/internal/metrics"

// The instrumentation subsystem, re-exported so downstream code (and the
// cmd/ binaries, which may not import internal packages) works with the
// registry directly: allocation-free counters, gauges and fixed-bucket
// latency histograms, a consistent point-in-time Snapshot, and a
// Prometheus text-format writer. See docs/OBSERVABILITY.md for the
// metric catalog and the management-plane endpoints that serve it.
type (
	// MetricsRegistry holds named instruments and renders them: pass one
	// to ServiceConfig.Metrics (or MetricsObserver) and expose it with
	// WriteText or Snapshot.
	MetricsRegistry = metrics.Registry
	// MetricLabel is one constant key=value label on an instrument.
	MetricLabel = metrics.Label
	// MetricPoint is one instrument's state in a registry snapshot.
	MetricPoint = metrics.Point
	// MetricCounter is a monotonically increasing counter.
	MetricCounter = metrics.Counter
	// MetricGauge is an instantaneous value.
	MetricGauge = metrics.Gauge
	// MetricHistogram records a sample distribution in fixed log-linear
	// buckets.
	MetricHistogram = metrics.Histogram
)

// MetricsTextContentType is the Content-Type for WriteText output — the
// Prometheus text exposition format, version 0.0.4.
const MetricsTextContentType = metrics.TextContentType

// NewMetricsRegistry returns an empty registry. Instruments register
// get-or-create by (name, labels), so independent components can share
// one registry safely.
func NewMetricsRegistry() *MetricsRegistry { return metrics.NewRegistry() }
