package hybridsched

// The documentation layer's rot guard: every intra-repo markdown link
// must resolve (file, directory, and #anchor targets), and every `make
// <target>` a document references must exist in the Makefile. Run by
// `make docs-check` (and therefore `make check` and CI).

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// docFiles returns the markdown files under the doc layer's contract:
// everything at the repo root plus docs/, except the transient task file
// and the exemplar-code scrapbook (whose bracketed snippets are not
// links).
func docFiles(t *testing.T) []string {
	t.Helper()
	var files []string
	for _, glob := range []string{"*.md", "docs/*.md"} {
		matches, err := filepath.Glob(glob)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range matches {
			switch filepath.Base(m) {
			case "ISSUE.md", "SNIPPETS.md":
				continue
			}
			files = append(files, m)
		}
	}
	if len(files) < 5 {
		t.Fatalf("only found %d markdown files (%v); doc walk is broken", len(files), files)
	}
	return files
}

// stripFences removes fenced code blocks, whose bracket/paren sequences
// are code, not links.
func stripFences(s string) string {
	var out strings.Builder
	inFence := false
	for _, line := range strings.Split(s, "\n") {
		if strings.HasPrefix(strings.TrimSpace(line), "```") {
			inFence = !inFence
			continue
		}
		if !inFence {
			out.WriteString(line)
			out.WriteByte('\n')
		}
	}
	return out.String()
}

// githubAnchor reduces a heading to its GitHub-style anchor slug.
func githubAnchor(heading string) string {
	s := strings.ToLower(strings.TrimSpace(heading))
	s = regexp.MustCompile("`([^`]*)`").ReplaceAllString(s, "$1")
	var b strings.Builder
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9':
			b.WriteRune(r)
		case r == ' ', r == '-':
			b.WriteByte('-')
		}
	}
	return b.String()
}

var (
	headingRe = regexp.MustCompile(`(?m)^#{1,6}\s+(.+)$`)
	linkRe    = regexp.MustCompile(`\[[^\]]*\]\(([^)\s]+)\)`)
)

// anchorsIn returns the set of heading anchors a markdown file defines.
func anchorsIn(t *testing.T, path string) map[string]bool {
	t.Helper()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	anchors := map[string]bool{}
	for _, m := range headingRe.FindAllStringSubmatch(stripFences(string(raw)), -1) {
		anchors[githubAnchor(m[1])] = true
	}
	return anchors
}

// TestDocLinks verifies every relative markdown link: the target file or
// directory exists, and when the link carries a #fragment, the target
// document defines that heading anchor.
func TestDocLinks(t *testing.T) {
	for _, path := range docFiles(t) {
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		body := stripFences(string(raw))
		for _, m := range linkRe.FindAllStringSubmatch(body, -1) {
			target := m[1]
			if strings.Contains(target, "://") || strings.HasPrefix(target, "mailto:") {
				continue // external; not this test's contract
			}
			file, frag, _ := strings.Cut(target, "#")
			resolved := path
			if file != "" {
				resolved = filepath.Join(filepath.Dir(path), file)
				if _, err := os.Stat(resolved); err != nil {
					t.Errorf("%s: dangling link %q: %v", path, target, err)
					continue
				}
			}
			if frag != "" && strings.HasSuffix(resolved, ".md") {
				if !anchorsIn(t, resolved)[frag] {
					t.Errorf("%s: link %q: no heading with anchor %q in %s",
						path, target, frag, resolved)
				}
			}
		}
	}
}

// TestDocMakeTargets verifies that every `make <target>` the docs
// reference (inline code or fenced shell blocks) names a real Makefile
// target.
func TestDocMakeTargets(t *testing.T) {
	mk, err := os.ReadFile("Makefile")
	if err != nil {
		t.Fatal(err)
	}
	targets := map[string]bool{}
	targetRe := regexp.MustCompile(`(?m)^([a-zA-Z0-9_-]+):`)
	for _, m := range targetRe.FindAllStringSubmatch(string(mk), -1) {
		targets[m[1]] = true
	}
	if !targets["check"] {
		t.Fatal("Makefile parse failed: no check target found")
	}

	inlineRe := regexp.MustCompile("`make ([a-zA-Z0-9_-]+)`")
	shellRe := regexp.MustCompile(`(?m)^\s*(?:\$ )?make ([a-zA-Z0-9_-]+)`)
	for _, path := range docFiles(t) {
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		check := func(ref string) {
			if !targets[ref] {
				t.Errorf("%s: references `make %s`, which is not a Makefile target", path, ref)
			}
		}
		// Inline code spans anywhere in the document.
		for _, m := range inlineRe.FindAllStringSubmatch(string(raw), -1) {
			check(m[1])
		}
		// Command lines inside fenced blocks.
		inFence := false
		for _, line := range strings.Split(string(raw), "\n") {
			if strings.HasPrefix(strings.TrimSpace(line), "```") {
				inFence = !inFence
				continue
			}
			if inFence {
				for _, m := range shellRe.FindAllStringSubmatch(line, -1) {
					check(m[1])
				}
			}
		}
	}
}

// TestDocExamplesExist pins the executable-documentation contract the
// README states: the godoc examples it names stay present and runnable.
func TestDocExamplesExist(t *testing.T) {
	raw, err := os.ReadFile("example_test.go")
	if err != nil {
		t.Fatal("README promises runnable godoc examples:", err)
	}
	for _, name := range []string{
		"ExampleNewScenario",
		"ExampleRunScenarios",
		"ExampleRegisterAlgorithm",
		"ExampleCaptureTrace",
		"ExampleNewService",
		"ExampleService_Snapshot",
	} {
		if !strings.Contains(string(raw), "func "+name+"(") {
			t.Errorf("example %s missing from example_test.go", name)
		}
	}
}
