package hybridsched_test

import (
	"bytes"
	"fmt"

	"hybridsched"
)

// Build a complete scenario with the validating options builder and run
// it. Every dimension is checked eagerly — a bad duration, an unknown
// algorithm name or an impossible load fails from NewScenario, before
// anything runs.
func ExampleNewScenario() {
	sc, err := hybridsched.NewScenario(
		hybridsched.WithPorts(8),
		hybridsched.WithLineRate(10*hybridsched.Gbps),
		hybridsched.WithLinkDelay(500*hybridsched.Nanosecond),
		hybridsched.WithSlot(10*hybridsched.Microsecond),
		hybridsched.WithReconfigTime(hybridsched.Microsecond),
		hybridsched.WithAlgorithm("islip"),
		hybridsched.WithTiming(hybridsched.DefaultHardware()),
		hybridsched.WithPipelined(true),
		hybridsched.WithLoad(0.5),
		hybridsched.WithPattern(hybridsched.Uniform{}),
		hybridsched.WithSizes(hybridsched.Fixed{Size: 1500 * hybridsched.Byte}),
		hybridsched.WithSeed(1),
		hybridsched.WithDuration(2*hybridsched.Millisecond),
	)
	if err != nil {
		fmt.Println("invalid scenario:", err)
		return
	}
	m, err := sc.Run()
	if err != nil {
		fmt.Println("run failed:", err)
		return
	}
	fmt.Printf("delivered %d of %d packets\n", m.Delivered, m.Injected)
	// Output:
	// delivered 6600 of 6600 packets
}

// Fan independent scenarios out over a worker pool. Results come back in
// submission order and are identical at any worker count, so sweeping a
// parameter is one slice construction away.
func ExampleRunScenarios() {
	var scs []hybridsched.Scenario
	for _, alg := range []string{"tdma", "islip"} {
		sc, err := hybridsched.NewScenario(
			hybridsched.WithPorts(8),
			hybridsched.WithLineRate(10*hybridsched.Gbps),
			hybridsched.WithLinkDelay(500*hybridsched.Nanosecond),
			hybridsched.WithSlot(10*hybridsched.Microsecond),
			hybridsched.WithReconfigTime(hybridsched.Microsecond),
			hybridsched.WithAlgorithm(alg),
			hybridsched.WithTiming(hybridsched.DefaultHardware()),
			hybridsched.WithLoad(0.6),
			hybridsched.WithPattern(hybridsched.Uniform{}),
			hybridsched.WithSizes(hybridsched.Fixed{Size: 1500 * hybridsched.Byte}),
			hybridsched.WithSeed(7),
			hybridsched.WithDuration(hybridsched.Millisecond),
		)
		if err != nil {
			fmt.Println(err)
			return
		}
		scs = append(scs, sc)
	}
	metrics, err := hybridsched.RunScenarios(scs, 2) // 2 workers
	if err != nil {
		fmt.Println(err)
		return
	}
	for i, m := range metrics {
		fmt.Printf("%s: %d delivered\n", scs[i].Fabric.Algorithm, m.Delivered)
	}
	// Output:
	// tdma: 4047 delivered
	// islip: 4047 delivered
}

// roundRobin is a deliberately minimal scheduling algorithm: it connects
// input i to output (i+shift) mod n whenever that pair has demand,
// rotating the shift every slot.
type roundRobin struct {
	n, shift int
}

func (r *roundRobin) Name() string { return "example-rr" }
func (r *roundRobin) Schedule(d hybridsched.DemandReader) hybridsched.Matching {
	n := d.N()
	m := hybridsched.NewMatching(n)
	for i := 0; i < n; i++ {
		j := (i + r.shift) % n
		if d.At(i, j) > 0 {
			m[i] = j
		}
	}
	r.shift = (r.shift + 1) % n
	return m
}
func (r *roundRobin) Complexity(n int) hybridsched.Complexity {
	return hybridsched.Complexity{HardwareDepth: 1, SoftwareOps: n}
}
func (r *roundRobin) Reset() { r.shift = 0 }

// Plug a custom scheduling algorithm into the registry. The registered
// name then works everywhere a built-in does: scenario configurations,
// the online service, cmd/hybridsim -alg, sweeps.
func ExampleRegisterAlgorithm() {
	hybridsched.RegisterAlgorithm("example-rr", func(ports int, seed uint64) hybridsched.Algorithm {
		return &roundRobin{n: ports}
	})
	fmt.Println(hybridsched.KnownAlgorithm("example-rr"))

	// Use it immediately, here in the online service.
	svc, err := hybridsched.NewService(hybridsched.ServiceConfig{
		Ports: 4, Algorithm: "example-rr", SlotBits: 1000,
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	defer svc.Close()
	svc.Offer(0, 1, 1000)
	svc.Step() // shift 0: 0->0 has no demand
	frames, _ := svc.Step()
	fmt.Printf("served %d bits via 0->%d\n", frames[0].ServedBits, frames[0].Match[0])
	// Output:
	// true
	// served 1000 bits via 0->1
}

// Capture a workload once, replay it bit-identically. The captured HSTR
// trace replays against any fabric configuration — swap the algorithm and
// the offered packets stay exactly the same. (WithWorkloadTrace does the
// same from a file on disk.)
func ExampleCaptureTrace() {
	opts := []hybridsched.Option{
		hybridsched.WithPorts(8),
		hybridsched.WithLineRate(10 * hybridsched.Gbps),
		hybridsched.WithLinkDelay(500 * hybridsched.Nanosecond),
		hybridsched.WithSlot(10 * hybridsched.Microsecond),
		hybridsched.WithReconfigTime(hybridsched.Microsecond),
		hybridsched.WithAlgorithm("islip"),
		hybridsched.WithTiming(hybridsched.DefaultHardware()),
		hybridsched.WithLoad(0.5),
		hybridsched.WithPattern(hybridsched.Uniform{}),
		hybridsched.WithSizes(hybridsched.Fixed{Size: 1500 * hybridsched.Byte}),
		hybridsched.WithSeed(3),
		hybridsched.WithDuration(hybridsched.Millisecond),
	}
	var tape bytes.Buffer
	capture, err := hybridsched.NewScenario(append(opts, hybridsched.CaptureTrace(&tape))...)
	if err != nil {
		fmt.Println(err)
		return
	}
	orig, err := capture.Run()
	if err != nil {
		fmt.Println(err)
		return
	}

	records, err := hybridsched.ReadTrace(&tape)
	if err != nil {
		fmt.Println(err)
		return
	}
	replay, err := hybridsched.NewScenario(append(opts, hybridsched.WithWorkloadRecords(records))...)
	if err != nil {
		fmt.Println(err)
		return
	}
	replayed, err := replay.Run()
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("captured %d packets\n", len(records))
	fmt.Println("replay identical:", replayed == orig)
	// Output:
	// captured 3327 packets
	// replay identical: true
}

// Run the scheduling loop as a long-lived service: stream demand in,
// compute one matching per epoch, stream frames out. Step drives epochs
// deterministically; Run ticks them on wall-clock time.
func ExampleNewService() {
	svc, err := hybridsched.NewService(hybridsched.ServiceConfig{
		Ports:     8,
		Algorithm: "islip",
		SlotBits:  12_000, // one 1500 B frame per matched pair per epoch
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	defer svc.Close()

	sub, err := svc.Subscribe(0, 16, hybridsched.DropOldestFrame)
	if err != nil {
		fmt.Println(err)
		return
	}
	svc.Offer(1, 5, 30_000) // 30 kb of pending demand from port 1 to 5
	for epoch := 0; epoch < 3; epoch++ {
		if _, err := svc.Step(); err != nil {
			fmt.Println(err)
			return
		}
	}
	for i := 0; i < 3; i++ {
		f := <-sub.Frames()
		fmt.Printf("epoch %d: served %d bits, backlog %d\n", f.Epoch, f.ServedBits, f.BacklogBits)
	}
	// Output:
	// epoch 1: served 12000 bits, backlog 18000
	// epoch 2: served 12000 bits, backlog 6000
	// epoch 3: served 6000 bits, backlog 0
}

// Checkpoint a live service and restore it elsewhere. The snapshot is an
// ordinary HSTR trace: pending demand and epoch counters come back
// exactly, and re-snapshotting reproduces the same bytes.
func ExampleService_Snapshot() {
	cfg := hybridsched.ServiceConfig{Ports: 8, Algorithm: "greedy", SlotBits: 1000}
	svc, err := hybridsched.NewService(cfg)
	if err != nil {
		fmt.Println(err)
		return
	}
	defer svc.Close()
	svc.Offer(2, 3, 5000)
	svc.Step()

	var checkpoint bytes.Buffer
	if err := svc.Snapshot(&checkpoint); err != nil {
		fmt.Println(err)
		return
	}
	restored, err := hybridsched.RestoreService(cfg, bytes.NewReader(checkpoint.Bytes()))
	if err != nil {
		fmt.Println(err)
		return
	}
	defer restored.Close()
	st := restored.Stats()[0]
	fmt.Printf("restored at epoch %d with %d bits pending\n", st.Epochs, st.BacklogBits)
	// Output:
	// restored at epoch 1 with 4000 bits pending
}
