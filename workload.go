package hybridsched

import "hybridsched/internal/traffic"

// The workload vocabulary: destination patterns, packet-size mixes and
// arrival processes, re-exported from the traffic layer.
type (
	// TrafficConfig configures the workload (load, pattern, sizes,
	// process).
	TrafficConfig = traffic.Config
	// Pattern chooses the destination for each flow.
	Pattern = traffic.Pattern
	// SizeDist chooses packet sizes.
	SizeDist = traffic.SizeDist
	// Process selects the arrival process (Poisson or OnOff).
	Process = traffic.Process

	// Uniform spreads flows uniformly over all other ports.
	Uniform = traffic.Uniform
	// Permutation sends each port's traffic to one fixed partner.
	Permutation = traffic.Permutation
	// Hotspot sends a fraction of traffic to a few hot destinations.
	Hotspot = traffic.Hotspot
	// Zipf draws destinations by a Zipf law with exponent S.
	Zipf = traffic.Zipf

	// Fixed always returns one packet size.
	Fixed = traffic.Fixed
	// TrimodalInternet is the classic 64/576/1500-byte packet mix.
	TrimodalInternet = traffic.TrimodalInternet
	// Empirical samples sizes from a piecewise-linear empirical CDF
	// given as (bytes, cumulative probability) knots — the published
	// data-center flow-size distributions. Use as FlowSizes with
	// FlowArrivals.
	Empirical = traffic.Empirical
	// CDFPoint is one knot of an empirical CDF: P(X <= Value bytes) =
	// Cum.
	CDFPoint = traffic.CDFPoint

	// TrafficGenerator drives per-port arrival processes onto any
	// injector — the way to feed a Device or other custom sink that
	// Scenario.Run does not cover.
	TrafficGenerator = traffic.Generator

	// DynamicPattern is a Pattern whose destination choice also depends
	// on simulated time — the interface the time-varying patterns below
	// implement. Any Pattern assigned to TrafficConfig.Pattern that also
	// implements DynamicPattern is driven through DstAt automatically.
	DynamicPattern = traffic.DynamicPattern
	// LoadProfile modulates the offered load over simulated time; assign
	// to TrafficConfig.Profile (Diurnal is the built-in).
	LoadProfile = traffic.LoadProfile

	// RotatingPermutation is hotspot churn: a permutation workload whose
	// matrix is rediscovered every Period — the adversarial dynamics for
	// schedulers that exploit a stable matrix. Build with
	// NewRotatingPermutation.
	RotatingPermutation = traffic.RotatingPermutation
	// IncastWave synchronizes every source onto one rotating victim port
	// for the leading Duty fraction of each Period — periodic incast.
	IncastWave = traffic.IncastWave
	// Conference partitions ports into meetings of Size and keeps
	// traffic inside each meeting — the DimDim web-conferencing shape.
	Conference = traffic.Conference
	// ScaleFree draws destinations by a global power law over a seeded
	// rank order — a few ports are hubs for every source. Build with
	// NewScaleFree.
	ScaleFree = traffic.ScaleFree
	// Diurnal is a smooth cosine load swing between the configured peak
	// and Floor*peak with the given Period; assign to
	// TrafficConfig.Profile.
	Diurnal = traffic.Diurnal
)

// Arrival processes.
const (
	// Poisson arrivals: memoryless interarrivals at the offered load.
	Poisson = traffic.Poisson
	// OnOff arrivals: bursts at line rate separated by idle gaps.
	OnOff = traffic.OnOff
	// FlowArrivals: flows arrive by a memoryless process, each drawing
	// its total size from FlowSizes and segmented into MTU packets sent
	// back-to-back at line rate.
	FlowArrivals = traffic.FlowArrivals
)

// NewPermutation draws a random derangement of n ports.
func NewPermutation(n int, seed uint64) *Permutation { return traffic.NewPermutation(n, seed) }

// NewRotatingPermutation builds the hotspot-churn pattern for n ports: a
// fresh derangement every period, derived deterministically from seed.
// Instances cache per-epoch state, so do not share one between
// concurrently running scenarios — build one per scenario.
func NewRotatingPermutation(n int, period Duration, seed uint64) *RotatingPermutation {
	return traffic.NewRotatingPermutation(n, period, seed)
}

// NewScaleFree builds the scale-free pattern for n ports with power-law
// exponent s (> 0; larger is more skewed); the rank-to-port assignment
// is drawn from seed.
func NewScaleFree(n int, s float64, seed uint64) *ScaleFree {
	return traffic.NewScaleFree(n, s, seed)
}

// WebConference returns the DimDim-style interactive packet-size mix:
// mostly small audio/control packets with a video tail. Use as Sizes
// (per-packet), not FlowSizes.
func WebConference() *Empirical { return traffic.WebConference() }

// NewZipf returns a Zipf pattern over n-1 destinations with exponent s.
func NewZipf(n int, s float64) *Zipf { return traffic.NewZipf(n, s) }

// NewTrafficGenerator validates cfg and returns a generator; call Start
// with a simulator and an emit function (for example Device.Inject).
func NewTrafficGenerator(cfg TrafficConfig) (*TrafficGenerator, error) { return traffic.New(cfg) }

// NewEmpirical builds a flow-size sampler from CDF knots sorted by Value
// (bytes) with Cum non-decreasing and ending at 1.0; it panics on
// malformed input, since CDF tables are static program data.
func NewEmpirical(name string, points []CDFPoint) *Empirical {
	return traffic.NewEmpirical(name, points)
}

// The built-in empirical flow-size distributions, digitized from
// published data-center measurement studies.

// WebSearch returns the DCTCP web-search flow-size distribution
// (Alizadeh et al., SIGCOMM 2010).
func WebSearch() *Empirical { return traffic.WebSearch() }

// DataMining returns the VL2 data-mining flow-size distribution
// (Greenberg et al., SIGCOMM 2009).
func DataMining() *Empirical { return traffic.DataMining() }

// Hadoop returns the Facebook Hadoop-cluster flow-size distribution
// (Roy et al., SIGCOMM 2015).
func Hadoop() *Empirical { return traffic.Hadoop() }

// CacheFollower returns the Facebook cache-follower flow-size
// distribution (Roy et al., SIGCOMM 2015).
func CacheFollower() *Empirical { return traffic.CacheFollower() }

// EmpiricalByName looks up a built-in empirical distribution by short
// name (websearch, datamining, hadoop, cachefollower) — the form sweeps
// and command-line flags select distributions in.
func EmpiricalByName(name string) (*Empirical, bool) { return traffic.EmpiricalByName(name) }
