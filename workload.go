package hybridsched

import "hybridsched/internal/traffic"

// The workload vocabulary: destination patterns, packet-size mixes and
// arrival processes, re-exported from the traffic layer.
type (
	// TrafficConfig configures the workload (load, pattern, sizes,
	// process).
	TrafficConfig = traffic.Config
	// Pattern chooses the destination for each flow.
	Pattern = traffic.Pattern
	// SizeDist chooses packet sizes.
	SizeDist = traffic.SizeDist
	// Process selects the arrival process (Poisson or OnOff).
	Process = traffic.Process

	// Uniform spreads flows uniformly over all other ports.
	Uniform = traffic.Uniform
	// Permutation sends each port's traffic to one fixed partner.
	Permutation = traffic.Permutation
	// Hotspot sends a fraction of traffic to a few hot destinations.
	Hotspot = traffic.Hotspot
	// Zipf draws destinations by a Zipf law with exponent S.
	Zipf = traffic.Zipf

	// Fixed always returns one packet size.
	Fixed = traffic.Fixed
	// TrimodalInternet is the classic 64/576/1500-byte packet mix.
	TrimodalInternet = traffic.TrimodalInternet

	// TrafficGenerator drives per-port arrival processes onto any
	// injector — the way to feed a Device or other custom sink that
	// Scenario.Run does not cover.
	TrafficGenerator = traffic.Generator
)

// Arrival processes.
const (
	// Poisson arrivals: memoryless interarrivals at the offered load.
	Poisson = traffic.Poisson
	// OnOff arrivals: bursts at line rate separated by idle gaps.
	OnOff = traffic.OnOff
)

// NewPermutation draws a random derangement of n ports.
func NewPermutation(n int, seed uint64) *Permutation { return traffic.NewPermutation(n, seed) }

// NewZipf returns a Zipf pattern over n-1 destinations with exponent s.
func NewZipf(n int, s float64) *Zipf { return traffic.NewZipf(n, s) }

// NewTrafficGenerator validates cfg and returns a generator; call Start
// with a simulator and an emit function (for example Device.Inject).
func NewTrafficGenerator(cfg TrafficConfig) (*TrafficGenerator, error) { return traffic.New(cfg) }
