package hybridsched

import "hybridsched/internal/traffic"

// The workload vocabulary: destination patterns, packet-size mixes and
// arrival processes, re-exported from the traffic layer.
type (
	// TrafficConfig configures the workload (load, pattern, sizes,
	// process).
	TrafficConfig = traffic.Config
	// Pattern chooses the destination for each flow.
	Pattern = traffic.Pattern
	// SizeDist chooses packet sizes.
	SizeDist = traffic.SizeDist
	// Process selects the arrival process (Poisson or OnOff).
	Process = traffic.Process

	// Uniform spreads flows uniformly over all other ports.
	Uniform = traffic.Uniform
	// Permutation sends each port's traffic to one fixed partner.
	Permutation = traffic.Permutation
	// Hotspot sends a fraction of traffic to a few hot destinations.
	Hotspot = traffic.Hotspot
	// Zipf draws destinations by a Zipf law with exponent S.
	Zipf = traffic.Zipf

	// Fixed always returns one packet size.
	Fixed = traffic.Fixed
	// TrimodalInternet is the classic 64/576/1500-byte packet mix.
	TrimodalInternet = traffic.TrimodalInternet
	// Empirical samples sizes from a piecewise-linear empirical CDF
	// given as (bytes, cumulative probability) knots — the published
	// data-center flow-size distributions. Use as FlowSizes with
	// FlowArrivals.
	Empirical = traffic.Empirical
	// CDFPoint is one knot of an empirical CDF: P(X <= Value bytes) =
	// Cum.
	CDFPoint = traffic.CDFPoint

	// TrafficGenerator drives per-port arrival processes onto any
	// injector — the way to feed a Device or other custom sink that
	// Scenario.Run does not cover.
	TrafficGenerator = traffic.Generator
)

// Arrival processes.
const (
	// Poisson arrivals: memoryless interarrivals at the offered load.
	Poisson = traffic.Poisson
	// OnOff arrivals: bursts at line rate separated by idle gaps.
	OnOff = traffic.OnOff
	// FlowArrivals: flows arrive by a memoryless process, each drawing
	// its total size from FlowSizes and segmented into MTU packets sent
	// back-to-back at line rate.
	FlowArrivals = traffic.FlowArrivals
)

// NewPermutation draws a random derangement of n ports.
func NewPermutation(n int, seed uint64) *Permutation { return traffic.NewPermutation(n, seed) }

// NewZipf returns a Zipf pattern over n-1 destinations with exponent s.
func NewZipf(n int, s float64) *Zipf { return traffic.NewZipf(n, s) }

// NewTrafficGenerator validates cfg and returns a generator; call Start
// with a simulator and an emit function (for example Device.Inject).
func NewTrafficGenerator(cfg TrafficConfig) (*TrafficGenerator, error) { return traffic.New(cfg) }

// NewEmpirical builds a flow-size sampler from CDF knots sorted by Value
// (bytes) with Cum non-decreasing and ending at 1.0; it panics on
// malformed input, since CDF tables are static program data.
func NewEmpirical(name string, points []CDFPoint) *Empirical {
	return traffic.NewEmpirical(name, points)
}

// The built-in empirical flow-size distributions, digitized from
// published data-center measurement studies.

// WebSearch returns the DCTCP web-search flow-size distribution
// (Alizadeh et al., SIGCOMM 2010).
func WebSearch() *Empirical { return traffic.WebSearch() }

// DataMining returns the VL2 data-mining flow-size distribution
// (Greenberg et al., SIGCOMM 2009).
func DataMining() *Empirical { return traffic.DataMining() }

// Hadoop returns the Facebook Hadoop-cluster flow-size distribution
// (Roy et al., SIGCOMM 2015).
func Hadoop() *Empirical { return traffic.Hadoop() }

// CacheFollower returns the Facebook cache-follower flow-size
// distribution (Roy et al., SIGCOMM 2015).
func CacheFollower() *Empirical { return traffic.CacheFollower() }

// EmpiricalByName looks up a built-in empirical distribution by short
// name (websearch, datamining, hadoop, cachefollower) — the form sweeps
// and command-line flags select distributions in.
func EmpiricalByName(name string) (*Empirical, bool) { return traffic.EmpiricalByName(name) }
