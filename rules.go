package hybridsched

import "hybridsched/internal/classify"

// The classification vocabulary: the processing logic's configurable
// look-up table that decides which fabric each flow may use.
type (
	// Rule is one look-up entry: match on (src, dst, class, size range)
	// with wildcards, yield a RuleAction.
	Rule = classify.Rule
	// RuleAction is the result of a classification: a path hint, a drop
	// bit, and an EPS queueing priority.
	RuleAction = classify.Action
	// PathHint tells the scheduler which fabric a flow may use.
	PathHint = classify.PathHint
	// RuleTable is the ordered look-up table (Fabric.Table exposes the
	// live one for runtime reconfiguration).
	RuleTable = classify.Table
)

// Any is the wildcard for rule port and class match fields.
const Any = classify.Any

// PathHint values.
const (
	// Auto lets the scheduler decide (the default).
	Auto = classify.Auto
	// EPSOnly pins a flow to the packet switch (latency-sensitive mice).
	EPSOnly = classify.EPSOnly
	// OCSOnly holds a flow for a circuit (known bulk transfers).
	OCSOnly = classify.OCSOnly
)

// NewRuleTable returns an empty table with the given default action.
func NewRuleTable(def RuleAction) *RuleTable { return classify.New(def) }

// ElephantThresholdRules returns the classic hybrid-switch configuration:
// frames of minSize bits or larger are OCS-eligible bulk, smaller frames
// and the latency-sensitive class stay on the EPS.
func ElephantThresholdRules(minSize Size) []Rule {
	return classify.ElephantThresholdRules(minSize)
}
